package fcache

import (
	"testing"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

func TestCacheStoreLookup(t *testing.T) {
	c := New()
	k := Key{1, 2}
	if _, ok := c.Lookup(k); ok {
		t.Fatal("lookup on empty cache hit")
	}
	c.Store(k, Entry{Status: fault.Detected, Vec: []uint8{1, 0}})
	e, ok := c.Lookup(k)
	if !ok || e.Status != fault.Detected || len(e.Vec) != 2 {
		t.Fatalf("lookup = %+v, %v", e, ok)
	}
	st := c.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Stores != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
}

func TestCacheFirstStoreWins(t *testing.T) {
	c := New()
	k := Key{3, 4}
	c.Store(k, Entry{Status: fault.Undetectable})
	c.Store(k, Entry{Status: fault.Detected, Vec: []uint8{1}})
	e, _ := c.Lookup(k)
	if e.Status != fault.Undetectable {
		t.Errorf("second store overwrote the first: %+v", e)
	}
}

func TestCacheRejectsAbortedAndZeroKey(t *testing.T) {
	c := New()
	c.Store(Key{5, 6}, Entry{Status: fault.Aborted})
	c.Store(Key{5, 6}, Entry{Status: fault.Untried})
	c.Store(Key{}, Entry{Status: fault.Undetectable})
	if c.Len() != 0 {
		t.Errorf("cache accepted aborted/untried/zero-key entries: %d", c.Len())
	}
	if _, ok := c.Lookup(Key{}); ok {
		t.Error("zero key matched")
	}
}

func TestCacheLimitDropsNotEvicts(t *testing.T) {
	c := NewWithLimit(2)
	c.Store(Key{1, 1}, Entry{Status: fault.Undetectable})
	c.Store(Key{2, 2}, Entry{Status: fault.Undetectable})
	c.Store(Key{3, 3}, Entry{Status: fault.Undetectable})
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Lookup(Key{1, 1}); !ok {
		t.Error("early entry evicted; full cache must drop new stores instead")
	}
	if _, ok := c.Lookup(Key{3, 3}); ok {
		t.Error("store into full cache was accepted")
	}
}

func TestCacheCopiesWitness(t *testing.T) {
	c := New()
	vec := []uint8{1, 0, 1}
	c.Store(Key{7, 7}, Entry{Status: fault.Detected, Vec: vec})
	vec[0] = 0
	e, _ := c.Lookup(Key{7, 7})
	if e.Vec[0] != 1 {
		t.Error("cache aliased the caller's witness buffer")
	}
}

// twoCone builds:  a,b -> NAND2(g1) -> NOR2(g3) <- INV(g2) <- ci ; g3 -> PO.
// With pad=true an unrelated INV chain is inserted first so every ID shifts.
func twoCone(lib *library.Library, pad bool) *netlist.Circuit {
	c := netlist.New("t", lib)
	if pad {
		p := c.AddPI("pad_in")
		q := c.AddGate("pad_g", lib.ByName("INVX1"), p)
		c.MarkPO(q)
	}
	a := c.AddPI("a")
	b := c.AddPI("b")
	ci := c.AddPI("ci")
	n1 := c.AddGate("g1", lib.ByName("NAND2X1"), a, b)
	n2 := c.AddGate("g2", lib.ByName("INVX1"), ci)
	y := c.AddGate("g3", lib.ByName("NOR2X1"), n1, n2)
	c.MarkPO(y)
	return c
}

func saFault(c *netlist.Circuit, net string, v uint8) *fault.Fault {
	n := c.NetByName(net)
	if n == nil {
		panic("no net " + net)
	}
	return &fault.Fault{Model: fault.StuckAt, Net: n, Value: v}
}

func TestFaultKeyStableAcrossRenumbering(t *testing.T) {
	lib := library.OSU018Like()
	plain := twoCone(lib, false)
	padded := twoCone(lib, true)
	// In the padded circuit every net/gate ID is shifted, but the g1_o
	// cone is untouched... except that PI indices shift too (pad_in is PI
	// 0). The key must depend on PI identity, so compare circuits where
	// the shared cone sees the same PI indices: pad AFTER the cone.
	if NewHasher(plain).FaultKey(saFault(plain, "g1_o", 0)) ==
		NewHasher(padded).FaultKey(saFault(padded, "g1_o", 0)) {
		t.Error("key ignored PI identity: shifted-PI cone hashed equal")
	}

	tail := twoCone(lib, false)
	p := tail.AddPI("pad_in")
	tail.MarkPO(tail.AddGate("pad_g", lib.ByName("INVX1"), p))
	k1 := NewHasher(plain).FaultKey(saFault(plain, "g1_o", 0))
	k2 := NewHasher(tail).FaultKey(saFault(tail, "g1_o", 0))
	if k1 != k2 {
		t.Error("key changed for a fault whose cone is untouched by unrelated logic")
	}
	if k1.Zero() {
		t.Error("hasher produced the reserved zero key")
	}
}

func TestFaultKeyDistinguishes(t *testing.T) {
	lib := library.OSU018Like()
	c := twoCone(lib, false)
	h := NewHasher(c)
	k00 := h.FaultKey(saFault(c, "g1_o", 0))
	k01 := h.FaultKey(saFault(c, "g1_o", 1))
	if k00 == k01 {
		t.Error("stuck-at value not in key")
	}
	tr := &fault.Fault{Model: fault.Transition, Net: c.NetByName("g1_o"), Value: 0}
	if h.FaultKey(tr) == k00 {
		t.Error("model not in key")
	}

	// Changing a gate inside the cone must change the key.
	c2 := netlist.New("t", lib)
	a := c2.AddPI("a")
	b := c2.AddPI("b")
	ci := c2.AddPI("ci")
	n1 := c2.AddGate("g1", lib.ByName("NAND2X1"), a, b)
	n2 := c2.AddGate("g2", lib.ByName("INVX1"), ci)
	y := c2.AddGate("g3", lib.ByName("NAND2X1"), n1, n2) // NOR2 -> NAND2
	c2.MarkPO(y)
	if NewHasher(c2).FaultKey(saFault(c2, "g1_o", 0)) == k00 {
		t.Error("downstream cone gate type not in key")
	}
}

func TestFaultKeyFanoutOrderInvariant(t *testing.T) {
	lib := library.OSU018Like()
	build := func(swap bool) *netlist.Circuit {
		c := netlist.New("t", lib)
		a := c.AddPI("a")
		b := c.AddPI("b")
		s := c.AddGate("stem", lib.ByName("NAND2X1"), a, b)
		// Two sinks on the stem, attached in either order.
		if swap {
			c.MarkPO(c.AddGate("s2", lib.ByName("BUFX2"), s))
			c.MarkPO(c.AddGate("s1", lib.ByName("INVX1"), s))
		} else {
			c.MarkPO(c.AddGate("s1", lib.ByName("INVX1"), s))
			c.MarkPO(c.AddGate("s2", lib.ByName("BUFX2"), s))
		}
		return c
	}
	c1, c2 := build(false), build(true)
	k1 := NewHasher(c1).FaultKey(saFault(c1, "stem_o", 1))
	k2 := NewHasher(c2).FaultKey(saFault(c2, "stem_o", 1))
	if k1 != k2 {
		t.Error("fanout enumeration order leaked into the key")
	}
}

func TestFaultKeyStaleSiteIsZero(t *testing.T) {
	lib := library.OSU018Like()
	c := twoCone(lib, false)
	other := twoCone(lib, false)
	h := NewHasher(c)
	// Fault whose site lives in another circuit generation.
	if k := h.FaultKey(saFault(other, "g1_o", 0)); !k.Zero() {
		t.Error("stale net keyed non-zero")
	}
	stale := &fault.Fault{Model: fault.CellAware, Gate: other.Gates[0]}
	if k := h.FaultKey(stale); !k.Zero() {
		t.Error("stale gate keyed non-zero")
	}
	if k := h.FaultKey(nil); !k.Zero() {
		t.Error("nil fault keyed non-zero")
	}
}
