package fcache

import (
	"testing"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/obs"
)

// TestLookupDropsChecksumMismatch: a content bit flip in a stored entry
// turns the next lookup into a counted miss that deletes the entry — the
// caller recomputes; the damaged verdict is never served.
func TestLookupDropsChecksumMismatch(t *testing.T) {
	c := New()
	k := Key{1, 2}
	c.Store(k, Entry{Status: fault.Detected, Vec: []uint8{1, 0, 1}})
	s := c.entries[k]
	s.e.Vec[1] ^= 1
	c.entries[k] = s

	if _, ok := c.Lookup(k); ok {
		t.Fatal("flipped entry served a verdict")
	}
	if got := c.Stats().Corrupt; got != 1 {
		t.Errorf("Corrupt = %d, want 1", got)
	}
	if c.Len() != 0 {
		t.Error("damaged entry not deleted")
	}
	// The slot is free again: a recomputed verdict stores and serves.
	c.Store(k, Entry{Status: fault.Undetectable})
	if e, ok := c.Lookup(k); !ok || e.Status != fault.Undetectable {
		t.Error("recomputed verdict not served after the drop")
	}
}

// TestLookupDropsVersionMismatch: an entry written under a different
// EntryVersion is dropped the same way, so a schema bump can never
// reinterpret old bytes as a verdict.
func TestLookupDropsVersionMismatch(t *testing.T) {
	c := New()
	tr := obs.New()
	c.Instrument(tr)
	k := Key{3, 4}
	c.Store(k, Entry{Status: fault.Detected, Vec: []uint8{1}})
	s := c.entries[k]
	s.ver++
	c.entries[k] = s

	if _, ok := c.Lookup(k); ok {
		t.Fatal("version-bumped entry served a verdict")
	}
	if got := c.Stats().Corrupt; got != 1 {
		t.Errorf("Corrupt = %d, want 1", got)
	}
	if got := tr.Counter("fcache/corrupt_dropped").Get(); got != 1 {
		t.Errorf("instrumented counter = %d, want 1", got)
	}
}

// TestTamperDeterministic: the damaged set is a pure function of (content,
// seed, rate) — two identically-built caches tampered with the same seed
// drop exactly the same entries.
func TestTamperDeterministic(t *testing.T) {
	build := func() *Cache {
		c := New()
		for i := 0; i < 128; i++ {
			c.Store(Key{uint64(i + 1), uint64(2*i + 1)}, Entry{Status: fault.Detected, Vec: []uint8{uint8(i), 1}})
		}
		return c
	}
	a, b := build(), build()
	na, nb := a.Tamper(7, 0.3), b.Tamper(7, 0.3)
	if na != nb || na == 0 || na == 128 {
		t.Fatalf("tamper damaged %d vs %d entries (want equal, partial)", na, nb)
	}
	for i := 0; i < 128; i++ {
		k := Key{uint64(i + 1), uint64(2*i + 1)}
		_, oka := a.Lookup(k)
		_, okb := b.Lookup(k)
		if oka != okb {
			t.Fatalf("entry %v survived in one cache and not the other", k)
		}
	}
	if ca, cb := a.Stats().Corrupt, b.Stats().Corrupt; ca != cb || int(ca) != na {
		t.Errorf("Corrupt counters %d/%d disagree with %d damaged", ca, cb, na)
	}
}
