package fcache

import (
	"dfmresyn/internal/fault"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

// The hasher computes, in two O(circuit) passes, the ingredients of every
// fault key:
//
//   - tfi[net]: a hash of the net's transitive fanin as an unfolded tree —
//     cell types, pin order, and the *identity* (PI-list index) of every
//     primary input at the leaves. Two nets with equal tfi hashes compute
//     the same Boolean function of the same PIs, so joint properties
//     (bridge activation, side-input conditions) are preserved, not just
//     per-net shape.
//   - gateSig[gate]: the cell type combined with the tfi of each fanin in
//     pin order — everything activation and local propagation at the gate
//     depends on.
//   - cone[net]: a hash of the net's influence cone — for every fanout path
//     to a primary output, the sink pin positions, the sink gates'
//     signatures (which fold in the side inputs' tfi hashes), and which
//     nets along the way are POs. Fanout branches are combined with a
//     commutative per-limb sum so that fanout *enumeration order*, which a
//     rebuild may permute for untouched logic, does not disturb the key.
//
// A fault key combines the model, the model-specific parameters, and the
// tfi/cone/gateSig hashes of its site(s). Everything the Boolean predicate
// "is this fault detectable" depends on is folded in; net and gate IDs,
// names, and anything else a rebuild renumbers are not.

// Domain-separation tags for the different hash inputs.
const (
	tagPI     = 0x9e3779b97f4a7c15
	tagGate   = 0xc2b2ae3d27d4eb4f
	tagPO     = 0x165667b19e3779f9
	tagSink   = 0x27d4eb2f165667c5
	tagCone   = 0x85ebca77c2b2ae63
	tagFault  = 0xff51afd7ed558ccd
	tagBranch = 0xc4ceb9fe1a85ec53
)

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// absorb folds one word into a key, order-sensitively.
func absorb(k Key, v uint64) Key {
	k[0] = mix64(k[0] ^ v)
	k[1] = mix64(k[1] ^ (v * 0x9e3779b97f4a7c15) ^ k[0])
	return k
}

// combine folds a whole key into another, order-sensitively.
func combine(k, o Key) Key {
	return absorb(absorb(k, o[0]), o[1])
}

// addKey combines two keys commutatively (per-limb wrapping sum). Used only
// across a net's fanout branches, where enumeration order is not meaningful.
func addKey(a, b Key) Key {
	a[0] += b[0]
	a[1] += b[1]
	return a
}

// Hasher holds the per-net structural hashes of one circuit. Construction
// is O(gates + nets); FaultKey is O(1) per fault. A Hasher is immutable
// after construction and safe for concurrent use.
type Hasher struct {
	c       *netlist.Circuit
	tfi     []Key
	cone    []Key
	gateSig []Key
}

// NewHasher computes the structural hashes of the circuit. The circuit must
// be acyclic (it is levelized internally).
func NewHasher(c *netlist.Circuit) *Hasher {
	h := &Hasher{
		c:       c,
		tfi:     make([]Key, len(c.Nets)),
		cone:    make([]Key, len(c.Nets)),
		gateSig: make([]Key, len(c.Gates)),
	}
	order := c.Levelize()

	// Pass 1, forward: tfi and gateSig.
	cellTag := make(map[*library.Cell]uint64)
	for i, pi := range c.PIs {
		h.tfi[pi.ID] = absorb(absorb(Key{}, tagPI), uint64(i))
	}
	for _, g := range order {
		ct, ok := cellTag[g.Type]
		if !ok {
			ct = hashString(g.Type.Name)
			cellTag[g.Type] = ct
		}
		k := absorb(absorb(Key{}, tagGate), ct)
		for _, in := range g.Fanin {
			k = combine(k, h.tfi[in.ID])
		}
		h.gateSig[g.ID] = k
		h.tfi[g.Out.ID] = k
	}

	// Pass 2, reverse: cone. A net's fanout gates are strictly later in
	// topological order than its driver, so walking gates in reverse order
	// guarantees every sink's output cone is ready.
	for i := len(order) - 1; i >= 0; i-- {
		g := order[i]
		h.cone[g.Out.ID] = h.coneOf(g.Out)
	}
	for _, pi := range c.PIs {
		h.cone[pi.ID] = h.coneOf(pi)
	}
	return h
}

func (h *Hasher) coneOf(n *netlist.Net) Key {
	sum := absorb(Key{}, tagCone)
	if n.IsPO {
		sum = addKey(sum, absorb(Key{}, tagPO))
	}
	for _, p := range n.Fanout {
		k := absorb(absorb(Key{}, tagSink), uint64(p.Pin))
		k = combine(k, h.gateSig[p.Gate.ID])
		k = combine(k, h.cone[p.Gate.Out.ID])
		sum = addKey(sum, k)
	}
	return sum
}

func hashString(s string) uint64 {
	// FNV-1a, then scrambled: cell names are short and similar.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	x := uint64(offset)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= prime
	}
	return mix64(x)
}

// liveNet reports whether n belongs to the hasher's circuit generation
// (pointer identity at its claimed ID — the same check netlint's
// fault/live-site rule uses).
func (h *Hasher) liveNet(n *netlist.Net) bool {
	return n != nil && n.ID >= 0 && n.ID < len(h.c.Nets) && h.c.Nets[n.ID] == n
}

func (h *Hasher) liveGate(g *netlist.Gate) bool {
	return g != nil && g.ID >= 0 && g.ID < len(h.c.Gates) && h.c.Gates[g.ID] == g && g.Out != nil
}

// FaultKey returns the cache key of f against the hasher's circuit, or the
// zero Key when the fault cannot be keyed (site from another circuit
// generation, missing behavior). The key is a pure function of the fault's
// support-cone structure and the fault parameters.
func (h *Hasher) FaultKey(f *fault.Fault) Key {
	if f == nil {
		return Key{}
	}
	k := absorb(absorb(Key{}, tagFault), uint64(f.Model))
	switch f.Model {
	case fault.StuckAt, fault.Transition:
		if !h.liveNet(f.Net) {
			return Key{}
		}
		k = absorb(k, uint64(f.Value))
		k = combine(k, h.tfi[f.Net.ID])
		k = combine(k, h.cone[f.Net.ID])
		if f.BranchGate != nil {
			if !h.liveGate(f.BranchGate) {
				return Key{}
			}
			k = absorb(absorb(k, tagBranch), uint64(f.BranchPin))
			k = combine(k, h.gateSig[f.BranchGate.ID])
			k = combine(k, h.cone[f.BranchGate.Out.ID])
		}
		return k
	case fault.Bridge:
		if !h.liveNet(f.Net) || !h.liveNet(f.Other) {
			return Key{}
		}
		k = combine(k, h.tfi[f.Net.ID])
		k = combine(k, h.cone[f.Net.ID])
		k = combine(k, h.tfi[f.Other.ID])
		k = combine(k, h.cone[f.Other.ID])
		return k
	case fault.CellAware:
		if !h.liveGate(f.Gate) || f.Behavior == nil {
			return Key{}
		}
		b := f.Behavior
		k = absorb(absorb(k, uint64(b.Inputs)), b.StaticMask)
		k = absorb(k, uint64(len(b.PairMask)))
		for _, pm := range b.PairMask {
			k = absorb(k, pm)
		}
		k = combine(k, h.gateSig[f.Gate.ID])
		k = combine(k, h.cone[f.Gate.Out.ID])
		return k
	}
	return Key{}
}
