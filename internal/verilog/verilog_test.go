package verilog

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

var lib = library.OSU018Like()

func TestWriteModuleStructure(t *testing.T) {
	c := netlist.New("demo", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	n := c.AddGate("u1", lib.ByName("NAND2X1"), a, b)
	y := c.AddGate("u2", lib.ByName("INVX1"), n)
	c.MarkPO(y)

	var buf bytes.Buffer
	if err := WriteModule(&buf, c); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module demo (a, b, u2_o);",
		"input a;",
		"input b;",
		"output u2_o;",
		"wire u1_o;",
		"NAND2X1 u1 (.A(a), .B(b), .Y(u1_o));",
		"INVX1 u2 (.A(u1_o), .Y(u2_o));",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q in:\n%s", want, v)
		}
	}
}

func TestInstanceCountMatches(t *testing.T) {
	c := bench.MustBuild("sparc_tlu", lib)
	var buf bytes.Buffer
	if err := WriteModule(&buf, c); err != nil {
		t.Fatal(err)
	}
	// One instance line per gate: "  <CELL> <inst> (...);"
	inst := regexp.MustCompile(`(?m)^  [A-Z][A-Z0-9]*X\d+ \S+ \(`)
	if got := len(inst.FindAllString(buf.String(), -1)); got != len(c.Gates) {
		t.Errorf("instances in Verilog = %d, gates = %d", got, len(c.Gates))
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"abc":    "abc",
		"a-b":    "a_b",
		"3x":     "_3x",
		"":       "_",
		"u1_o":   "u1_o",
		"a.b[0]": "a_b_0_",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteLibraryCoversAllCells(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, c := range lib.Cells {
		if !strings.Contains(v, "module "+c.Name+" (") {
			t.Errorf("library export missing cell %s", c.Name)
		}
	}
	if !strings.Contains(v, "assign Y = ") {
		t.Error("library export missing behavioral assigns")
	}
}

// TestCellExprMatchesTruthTable: the generated SOP expression must agree
// with the cell truth table when evaluated symbolically.
func TestCellExprMatchesTruthTable(t *testing.T) {
	for _, c := range lib.Cells {
		expr := cellExpr(c)
		for a := uint(0); a < 1<<uint(c.NumInputs()); a++ {
			if got := evalExpr(t, expr, c, a); got != c.Eval(a) {
				t.Fatalf("%s expr mismatch at %b: expr %d table %d\n%s",
					c.Name, a, got, c.Eval(a), expr)
			}
		}
	}
}

// evalExpr is a miniature evaluator for the SOP expressions cellExpr
// produces: terms joined by " | ", each a parenthesized conjunction of
// literals.
func evalExpr(t *testing.T, expr string, c *library.Cell, a uint) uint8 {
	t.Helper()
	switch expr {
	case "1'b0":
		return 0
	case "1'b1":
		return 1
	}
	valOf := func(name string) uint8 {
		for i, in := range c.Inputs {
			if in == name {
				return uint8(a >> uint(i) & 1)
			}
		}
		t.Fatalf("unknown literal %q", name)
		return 0
	}
	for _, term := range strings.Split(expr, " | ") {
		term = strings.Trim(term, "()")
		val := uint8(1)
		for _, lit := range strings.Split(term, " & ") {
			if strings.HasPrefix(lit, "~") {
				val &= valOf(lit[1:]) ^ 1
			} else {
				val &= valOf(lit)
			}
		}
		if val == 1 {
			return 1
		}
	}
	return 0
}
