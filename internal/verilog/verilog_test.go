package verilog

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

var lib = library.OSU018Like()

func TestWriteModuleStructure(t *testing.T) {
	c := netlist.New("demo", lib)
	a := c.AddPI("a")
	b := c.AddPI("b")
	n := c.AddGate("u1", lib.ByName("NAND2X1"), a, b)
	y := c.AddGate("u2", lib.ByName("INVX1"), n)
	c.MarkPO(y)

	var buf bytes.Buffer
	if err := WriteModule(&buf, c); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module demo (a, b, u2_o);",
		"input a;",
		"input b;",
		"output u2_o;",
		"wire u1_o;",
		"NAND2X1 u1 (.A(a), .B(b), .Y(u1_o));",
		"INVX1 u2 (.A(u1_o), .Y(u2_o));",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("missing %q in:\n%s", want, v)
		}
	}
}

func TestInstanceCountMatches(t *testing.T) {
	c := bench.MustBuild("sparc_tlu", lib)
	var buf bytes.Buffer
	if err := WriteModule(&buf, c); err != nil {
		t.Fatal(err)
	}
	// One instance line per gate: "  <CELL> <inst> (...);"
	inst := regexp.MustCompile(`(?m)^  [A-Z][A-Z0-9]*X\d+ \S+ \(`)
	if got := len(inst.FindAllString(buf.String(), -1)); got != len(c.Gates) {
		t.Errorf("instances in Verilog = %d, gates = %d", got, len(c.Gates))
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"abc":    "abc",
		"a-b":    "a_b",
		"3x":     "_3x",
		"":       "_",
		"u1_o":   "u1_o",
		"a.b[0]": "a_b_0_",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteLibraryCoversAllCells(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, c := range lib.Cells {
		if !strings.Contains(v, "module "+c.Name+" (") {
			t.Errorf("library export missing cell %s", c.Name)
		}
	}
	if !strings.Contains(v, "assign Y = ") {
		t.Error("library export missing behavioral assigns")
	}
}

// TestCellExprMatchesTruthTable: the generated SOP expression must agree
// with the cell truth table when evaluated symbolically.
func TestCellExprMatchesTruthTable(t *testing.T) {
	for _, c := range lib.Cells {
		expr := cellExpr(c)
		for a := uint(0); a < 1<<uint(c.NumInputs()); a++ {
			if got := evalExpr(t, expr, c, a); got != c.Eval(a) {
				t.Fatalf("%s expr mismatch at %b: expr %d table %d\n%s",
					c.Name, a, got, c.Eval(a), expr)
			}
		}
	}
}

// evalExpr is a miniature evaluator for the SOP expressions cellExpr
// produces: terms joined by " | ", each a parenthesized conjunction of
// literals.
func evalExpr(t *testing.T, expr string, c *library.Cell, a uint) uint8 {
	t.Helper()
	switch expr {
	case "1'b0":
		return 0
	case "1'b1":
		return 1
	}
	valOf := func(name string) uint8 {
		for i, in := range c.Inputs {
			if in == name {
				return uint8(a >> uint(i) & 1)
			}
		}
		t.Fatalf("unknown literal %q", name)
		return 0
	}
	for _, term := range strings.Split(expr, " | ") {
		term = strings.Trim(term, "()")
		val := uint8(1)
		for _, lit := range strings.Split(term, " & ") {
			if strings.HasPrefix(lit, "~") {
				val &= valOf(lit[1:]) ^ 1
			} else {
				val &= valOf(lit)
			}
		}
		if val == 1 {
			return 1
		}
	}
	return 0
}

// TestReadModuleRoundTrip: write -> read -> write must be byte-identical,
// and the re-read circuit must be structurally equal, for every paper
// benchmark circuit.
func TestReadModuleRoundTrip(t *testing.T) {
	for _, name := range bench.Names {
		c := bench.MustBuild(name, lib)
		var first bytes.Buffer
		if err := WriteModule(&first, c); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		rc, err := ReadModule(bytes.NewReader(first.Bytes()), lib)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if len(rc.Gates) != len(c.Gates) || len(rc.Nets) != len(c.Nets) ||
			len(rc.PIs) != len(c.PIs) || len(rc.POs) != len(c.POs) {
			t.Fatalf("%s: structure differs: %d/%d gates, %d/%d nets, %d/%d PIs, %d/%d POs",
				name, len(rc.Gates), len(c.Gates), len(rc.Nets), len(c.Nets),
				len(rc.PIs), len(c.PIs), len(rc.POs), len(c.POs))
		}
		var second bytes.Buffer
		if err := WriteModule(&second, rc); err != nil {
			t.Fatalf("%s: re-write: %v", name, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("%s: round trip not byte-identical", name)
		}
	}
}

// TestReadModuleErrors: malformed inputs must fail with a diagnostic, not
// parse silently.
func TestReadModuleErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"no module":        "input a;\n",
		"unknown cell":     "module m (a, y);\ninput a;\noutput y;\nBOGUS u1 (.A(a), .Y(y));\nendmodule\n",
		"unconnected Y":    "module m (a, y);\ninput a;\noutput y;\nINVX1 u1 (.A(a));\nendmodule\n",
		"missing input":    "module m (a, y);\ninput a;\noutput y;\nNAND2X1 u1 (.A(a), .Y(y));\nendmodule\n",
		"positional ports": "module m (a, y);\ninput a;\noutput y;\nINVX1 u1 (a, y);\nendmodule\n",
		"undeclared net":   "module m (a, y);\ninput a;\noutput y;\nINVX1 u1 (.A(ghost), .Y(y));\nendmodule\n",
	}
	for label, src := range cases {
		if _, err := ReadModule(strings.NewReader(src), lib); err == nil {
			t.Errorf("%s: parsed without error", label)
		}
	}
}

// TestReadModuleComments: line comments and blank lines are ignored.
func TestReadModuleComments(t *testing.T) {
	src := `// header comment
module m (a, b, y); // ports
  input a;
  input b;
  output y;

  // the only gate
  NAND2X1 u1 (.A(a), .B(b), .Y(y));
endmodule
`
	c, err := ReadModule(strings.NewReader(src), lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 1 || len(c.PIs) != 2 || len(c.POs) != 1 {
		t.Fatalf("parsed structure wrong: %d gates, %d PIs, %d POs", len(c.Gates), len(c.PIs), len(c.POs))
	}
}
