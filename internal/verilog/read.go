package verilog

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
)

// ReadModule parses a structural Verilog module of the subset WriteModule
// emits — one module, scalar ports, named-port primitive instances from
// the given cell library — back into a Circuit. It is the ingest half of
// the round trip: WriteModule → ReadModule → WriteModule is byte-stable.
//
// The parser translates statement by statement into the internal text
// netlist format and delegates to netlist.Read, so net-name round-tripping
// and structural validation (duplicate nets, fanin arity, acyclicity via
// the final Check) are exactly the text reader's. Instances must appear in
// topological order, which WriteModule guarantees (it emits in Levelize
// order).
func ReadModule(r io.Reader, lib *library.Library) (*netlist.Circuit, error) {
	stmts, err := verilogStatements(r)
	if err != nil {
		return nil, err
	}
	var (
		b       strings.Builder
		inputs  []string
		outputs []string
		started bool
	)
	for _, st := range stmts {
		fields := strings.Fields(st)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "module":
			if started {
				return nil, fmt.Errorf("verilog: multiple module declarations")
			}
			started = true
			name, _, _ := strings.Cut(strings.TrimSpace(st[len("module"):]), "(")
			name = strings.TrimSpace(name)
			if name == "" {
				return nil, fmt.Errorf("verilog: module needs a name")
			}
			fmt.Fprintf(&b, "circuit %s\n", name)
		case "endmodule":
			// Port-list declarations only name the ports; input/output
			// statements carry the direction, collected below.
		case "input":
			inputs = append(inputs, portIdents(st[len("input"):])...)
		case "output":
			outputs = append(outputs, portIdents(st[len("output"):])...)
		case "wire":
			// Wire declarations carry no structure the netlist format
			// needs: gate outputs declare their nets.
		default:
			if !started {
				return nil, fmt.Errorf("verilog: instance before module declaration")
			}
			if len(inputs) > 0 {
				fmt.Fprintf(&b, "input %s\n", strings.Join(inputs, " "))
				inputs = nil
			}
			line, err := instanceLine(st, lib)
			if err != nil {
				return nil, err
			}
			b.WriteString(line)
		}
	}
	if !started {
		return nil, fmt.Errorf("verilog: no module found")
	}
	if len(inputs) > 0 {
		fmt.Fprintf(&b, "input %s\n", strings.Join(inputs, " "))
	}
	if len(outputs) > 0 {
		fmt.Fprintf(&b, "output %s\n", strings.Join(outputs, " "))
	}
	c, err := netlist.Read(strings.NewReader(b.String()), lib)
	if err != nil {
		return nil, fmt.Errorf("verilog: %w", err)
	}
	return c, nil
}

// verilogStatements strips comments and splits the source on ';'. The
// subset has no attributes, strings or block comments, so line comments
// and semicolons delimit everything.
func verilogStatements(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var src strings.Builder
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		src.WriteString(line)
		src.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("verilog: %w", err)
	}
	var stmts []string
	for _, st := range strings.Split(src.String(), ";") {
		st = strings.TrimSpace(st)
		if st != "" {
			stmts = append(stmts, st)
		}
	}
	return stmts, nil
}

// portIdents splits an input/output declaration's identifier list.
func portIdents(s string) []string {
	var out []string
	for _, f := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' || r == '\n' }) {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// instanceLine translates one named-port primitive instantiation into a
// "gate <instance> <cell> <out> <in...>" text-netlist line, resolving the
// port order through the cell's canonical port list (inputs then Y).
func instanceLine(st string, lib *library.Library) (string, error) {
	head, conns, ok := strings.Cut(st, "(")
	if !ok {
		return "", fmt.Errorf("verilog: bad instance statement %q", st)
	}
	conns = strings.TrimSpace(conns)
	conns = strings.TrimSuffix(conns, ")")
	hf := strings.Fields(head)
	if len(hf) != 2 {
		return "", fmt.Errorf("verilog: bad instance header %q", strings.TrimSpace(head))
	}
	cellName, inst := hf[0], hf[1]
	cell := lib.ByName(cellName)
	if cell == nil {
		return "", fmt.Errorf("verilog: unknown cell %q", cellName)
	}
	byPort := map[string]string{}
	for _, c := range strings.Split(conns, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			continue
		}
		if !strings.HasPrefix(c, ".") {
			return "", fmt.Errorf("verilog: instance %s: positional ports unsupported (%q)", inst, c)
		}
		port, net, ok := strings.Cut(c[1:], "(")
		if !ok {
			return "", fmt.Errorf("verilog: instance %s: bad port connection %q", inst, c)
		}
		net = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(net), ")"))
		port = strings.TrimSpace(port)
		if net == "" || port == "" {
			return "", fmt.Errorf("verilog: instance %s: bad port connection %q", inst, c)
		}
		if _, dup := byPort[port]; dup {
			return "", fmt.Errorf("verilog: instance %s: port %s connected twice", inst, port)
		}
		byPort[port] = net
	}
	out, ok := byPort["Y"]
	if !ok {
		return "", fmt.Errorf("verilog: instance %s: output port Y unconnected", inst)
	}
	parts := []string{"gate", inst, cellName, out}
	for _, p := range cell.Inputs {
		net, ok := byPort[p]
		if !ok {
			return "", fmt.Errorf("verilog: instance %s: input port %s unconnected", inst, p)
		}
		parts = append(parts, net)
	}
	if len(byPort) != cell.NumInputs()+1 {
		return "", fmt.Errorf("verilog: instance %s: %d connections for %d ports", inst, len(byPort), cell.NumInputs()+1)
	}
	return strings.Join(parts, " ") + "\n", nil
}
