package chaos

import (
	"testing"

	"dfmresyn/internal/fault"
	"dfmresyn/internal/fcache"
)

// TestInjectorsDeterministic: the selected set is a pure function of the
// seed — same seed, same picks; different seed, (almost surely) different
// picks.
func TestInjectorsDeterministic(t *testing.T) {
	a, b, c := Panics(7, 0.1), Panics(7, 0.1), Panics(8, 0.1)
	same, diff := true, false
	for id := 0; id < 4096; id++ {
		if a(id, 0) != b(id, 0) {
			same = false
		}
		if a(id, 0) != c(id, 0) {
			diff = true
		}
	}
	if !same {
		t.Error("same seed selected different faults")
	}
	if !diff {
		t.Error("different seeds selected identical faults over 4096 ids")
	}
}

// TestPanicsSpareRetry: Panics never fires on the retry attempt;
// StubbornPanics fires on both for the same selected set.
func TestPanicsSpareRetry(t *testing.T) {
	p, s := Panics(3, 0.2), StubbornPanics(3, 0.2)
	fired := 0
	for id := 0; id < 4096; id++ {
		if p(id, 1) {
			t.Fatalf("Panics fired on retry of fault %d", id)
		}
		if p(id, 0) != s(id, 0) || s(id, 0) != s(id, 1) {
			t.Fatalf("selection disagrees between injectors for fault %d", id)
		}
		if p(id, 0) {
			fired++
		}
	}
	// ~20% of 4096; allow generous slack, this is a sanity band not a
	// statistical test.
	if fired < 600 || fired > 1100 {
		t.Errorf("rate 0.2 selected %d/4096 faults, outside sanity band", fired)
	}
}

// TestCorruptCache: damaged entries are counted and every one degrades to
// a lookup miss (recompute), never a served verdict.
func TestCorruptCache(t *testing.T) {
	c := fcache.New()
	var keys []fcache.Key
	for i := 0; i < 64; i++ {
		k := fcache.Key{uint64(i + 1), uint64(i + 101)}
		keys = append(keys, k)
		c.Store(k, fcache.Entry{Status: fault.Detected, Vec: []uint8{1, 0, 1}})
	}
	n := CorruptCache(c, 42, 1.0)
	if n != 64 {
		t.Fatalf("rate 1.0 damaged %d/64 entries", n)
	}
	for _, k := range keys {
		if _, ok := c.Lookup(k); ok {
			t.Fatal("damaged entry served a verdict")
		}
	}
	if got := c.Stats().Corrupt; got != 64 {
		t.Errorf("Stats().Corrupt = %d, want 64", got)
	}
}
