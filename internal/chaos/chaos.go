// Package chaos is the deterministic fault-injection harness for the
// pipeline's own execution: it damages the run, not the circuit. Every
// injector is a pure function of a seed and its inputs, so a chaos run is
// exactly reproducible — the tests that drive the harness assert that the
// pipeline under injected worker panics and cache corruption produces the
// same tables as an undisturbed run, and reproducibility is what turns
// "it survived once" into a regression gate.
//
// Three failure classes are covered, matching DESIGN.md §12:
//
//   - worker panics: Panics/StubbornPanics plug into
//     atpg.Config.InjectPanic and fire inside PODEM searches, exercising
//     the par.EachGuard recover → retry → quarantine ladder;
//   - cache corruption: CorruptCache flips verdict bits and bumps entry
//     versions in an fcache.Cache, exercising the checksum degrade-to-
//     recompute path;
//   - process death: the simulated SIGKILL between accepted iterations is
//     resyn.Options.StopAfterCommits, which stops the sweep at the exact
//     boundary a kill-and-resume differential needs; chaos only documents
//     it here because it lives where the commit loop lives.
package chaos

import (
	"dfmresyn/internal/fcache"
)

// mix64 is the splitmix64 finalizer — the same cheap bijection the fcache
// cone hash uses, duplicated here so the harness stays dependency-light.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hit reports whether the seeded hash of id selects it at the given rate.
// The top 53 bits become a uniform float in [0,1), so rate is an expected
// fraction, and the selected set is a pure function of (seed, id, rate).
func hit(seed int64, id int, rate float64) bool {
	if rate <= 0 {
		return false
	}
	h := mix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(id)*0x2545f4914f6cdd1d + 0x632be59bd9b4e019)
	return float64(h>>11)/float64(1<<53) < rate
}

// Panics returns an atpg.Config.InjectPanic hook that panics the first
// PODEM search of a seed-selected ~rate fraction of faults and never the
// retry: every injected panic must be absorbed by the recover-and-retry
// ladder, so a run under Panics completes with Recovered > 0, an empty
// quarantine, and byte-identical tables.
func Panics(seed int64, rate float64) func(faultID, attempt int) bool {
	return func(faultID, attempt int) bool {
		return attempt == 0 && hit(seed, faultID, rate)
	}
}

// StubbornPanics panics both the first search and the retry of the
// selected faults, driving them into quarantine: the run must still
// complete, with the selected faults reported in Result.Quarantined and
// marked Aborted instead of crashing the process.
func StubbornPanics(seed int64, rate float64) func(faultID, attempt int) bool {
	return func(faultID, attempt int) bool {
		return hit(seed, faultID, rate)
	}
}

// CorruptCache deterministically damages ~rate of the entries in a warm
// verdict cache — half by flipping a bit in the stored verdict (checksum
// mismatch), half by bumping the entry's schema version — and returns how
// many entries were hit. The integrity check must turn every damaged
// entry into a recompute-and-warn, never a differing verdict.
func CorruptCache(c *fcache.Cache, seed int64, rate float64) int {
	return c.Tamper(seed, rate)
}
