// Flight-recorder gates for the whole pipeline: the ledger's canonical form
// is byte-identical at any worker count; a run killed after iteration k and
// resumed produces two ledgers whose canonical concatenation equals the
// uninterrupted run's; and per-tier verdict provenance reconciles exactly
// with the engine's own counters — every classified fault appears in the
// ledger exactly once, decided by exactly one tier.
package dfmresyn

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/fcache"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/obs"
	"dfmresyn/internal/resilience"
	"dfmresyn/internal/resyn"
)

// recordedSweep runs the full q-sweep with a flight recorder attached and
// returns the ledger's canonical bytes, its digest, and the sweep result.
// The recorder attaches after the original analysis — the resume protocol
// re-runs that analysis in the resuming process, so the sweep ledger starts
// at the first iteration in both the golden and the resumed run.
func recordedSweep(t *testing.T, name string, workers int, opt resyn.Options, resumeFrom string) ([]byte, string, *resyn.Result) {
	t.Helper()
	env := flow.NewEnv()
	env.Workers = workers
	env.FaultCache = fcache.New()
	c := bench.MustBuild(name, env.Lib)
	orig, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ledger := obs.NewLedger(&buf)
	env.Ledger = ledger

	var r *resyn.Result
	if resumeFrom != "" {
		r, err = resyn.Resume(env, orig, resumeFrom, opt)
	} else {
		r, err = resyn.RunFrom(env, orig, opt)
	}
	if err != nil && !errors.Is(err, resilience.ErrInterrupted) {
		t.Fatal(err)
	}
	digest := ledger.Digest()
	if err := ledger.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadLedger(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	canon, err := obs.CanonicalLedger(recs)
	if err != nil {
		t.Fatal(err)
	}
	// The digest a reader recomputes equals the writer's.
	if rd, err := obs.LedgerDigest(recs); err != nil || rd != digest {
		t.Fatalf("reader digest %s (err %v) != writer digest %s", rd, err, digest)
	}
	return canon, digest, r
}

// TestLedgerWorkersDifferential: the tentpole determinism gate. The sweep's
// ledger — every stage, verdict and iteration record, tiers included — is
// byte-identical in canonical form at one worker and at eight.
func TestLedgerWorkersDifferential(t *testing.T) {
	name := "sparc_spu"
	c1, d1, _ := recordedSweep(t, name, 1, resyn.Options{}, "")
	c8, d8, _ := recordedSweep(t, name, 8, resyn.Options{}, "")
	if d1 != d8 {
		t.Errorf("ledger digest differs across worker counts: %s vs %s", d1, d8)
	}
	if !bytes.Equal(c1, c8) {
		t.Errorf("canonical ledgers differ across worker counts:\n--- workers=1:\n%s--- workers=8:\n%s", c1, c8)
	}
	if len(c1) == 0 {
		t.Fatal("sweep recorded an empty ledger")
	}
}

// TestLedgerKillAndResume: a sweep killed after iteration k journals its
// verdict-cache content alongside the commits; the resumed process imports
// it, replays silently, and continues recording — so the canonical
// concatenation of the two partial ledgers equals the uninterrupted run's,
// byte for byte, even though tier attribution (cache vs fresh search)
// depends on the cache history the kill would otherwise have destroyed.
func TestLedgerKillAndResume(t *testing.T) {
	name := "sparc_spu"
	golden, _, gr := recordedSweep(t, name, 0, resyn.Options{}, "")
	commits := len(gr.Trace)
	if commits == 0 {
		t.Fatalf("%s: golden sweep accepted no iterations", name)
	}
	kills := []int{1}
	if commits > 1 {
		kills = append(kills, (commits+1)/2)
	}
	for _, k := range kills {
		journal := filepath.Join(t.TempDir(), "sweep.ckpt")
		part1, _, killed := recordedSweep(t, name, 0, resyn.Options{Journal: journal, StopAfterCommits: k}, "")
		if !killed.Interrupted || len(killed.Trace) != k {
			t.Fatalf("kill at %d: Interrupted=%v commits=%d", k, killed.Interrupted, len(killed.Trace))
		}
		part2, _, resumed := recordedSweep(t, name, 0, resyn.Options{}, journal)
		if !resumed.Resumed || resumed.ReplayedCommits != k {
			t.Fatalf("kill at %d: Resumed=%v replayed=%d", k, resumed.Resumed, resumed.ReplayedCommits)
		}
		if got := append(append([]byte(nil), part1...), part2...); !bytes.Equal(golden, got) {
			t.Errorf("kill at %d/%d: canonical(golden) != canonical(part1)+canonical(part2)\n--- golden:\n%s--- concatenated:\n%s",
				k, commits, golden, got)
		}
	}
}

// analyzeWithLedger runs one analysis against env (building the circuit
// fresh) and returns the decoded ledger records of that analysis alone.
func analyzeWithLedger(t *testing.T, env *flow.Env, name string) (*flow.Design, []obs.LedgerRecord) {
	t.Helper()
	var buf bytes.Buffer
	ledger := obs.NewLedger(&buf)
	env.Ledger = ledger
	defer func() { env.Ledger = nil }()
	c := bench.MustBuild(name, env.Lib)
	d, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadLedger(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return d, recs
}

// TestLedgerTierReconciliation: the acceptance criterion tying the ledger to
// the engine's own books. Every fault appears exactly once with exactly one
// deciding tier; the stage record's tier breakdown equals both the recount
// over its verdicts and Result.Tiers; and the tier counts reconcile with the
// engine counters they shadow (cache == CacheHits, implic == StaticProven,
// sat == SATEscalations, sat-memo == SATMemoHits, total == classified).
func TestLedgerTierReconciliation(t *testing.T) {
	for _, name := range []string{"wb_conmax", "sparc_ifu"} {
		name := name
		t.Run(name, func(t *testing.T) {
			env := flow.NewEnv()
			env.FaultCache = fcache.New()
			cold, coldRecs := analyzeWithLedger(t, env, name)
			warm, warmRecs := analyzeWithLedger(t, env, name) // cache now hot
			if warm.Result.CacheHits == 0 {
				t.Fatal("warm analysis hit nothing — the cache tier is untested")
			}
			for _, run := range []struct {
				label string
				d     *flow.Design
				recs  []obs.LedgerRecord
			}{{"cold", cold, coldRecs}, {"warm", warm, warmRecs}} {
				var stages, verdicts int
				var stageRec obs.LedgerRecord
				var recount obs.TierCounts
				seen := map[int]int{}
				for _, rec := range run.recs {
					switch rec.T {
					case "stage":
						stages++
						stageRec = rec
					case "verdict":
						verdicts++
						seen[rec.Fault]++
						recount.Add(rec.Tier)
					}
				}
				if stages != 1 {
					t.Fatalf("%s: %d stage records for one analysis", run.label, stages)
				}
				res := run.d.Result
				if verdicts != run.d.Faults.Len() || verdicts != stageRec.Faults {
					t.Errorf("%s: %d verdicts for %d faults (stage says %d)",
						run.label, verdicts, run.d.Faults.Len(), stageRec.Faults)
				}
				for id, n := range seen {
					if n != 1 {
						t.Errorf("%s: fault %d recorded %d times", run.label, id, n)
					}
				}
				if recount != stageRec.Tiers || recount != res.Tiers {
					t.Errorf("%s: tier breakdowns disagree: verdicts=%+v stage=%+v result=%+v",
						run.label, recount, stageRec.Tiers, res.Tiers)
				}
				if res.Tiers.Cache != res.CacheHits {
					t.Errorf("%s: tier cache=%d, CacheHits=%d", run.label, res.Tiers.Cache, res.CacheHits)
				}
				if res.Tiers.Implic != res.StaticProven {
					t.Errorf("%s: tier implic=%d, StaticProven=%d", run.label, res.Tiers.Implic, res.StaticProven)
				}
				if res.Tiers.SAT != res.SATEscalations {
					t.Errorf("%s: tier sat=%d, SATEscalations=%d", run.label, res.Tiers.SAT, res.SATEscalations)
				}
				if res.Tiers.SATMemo != res.SATMemoHits {
					t.Errorf("%s: tier sat-memo=%d, SATMemoHits=%d", run.label, res.Tiers.SATMemo, res.SATMemoHits)
				}
				if got, want := res.Tiers.Total(), res.Detected+res.Undetectable+res.Aborted; got != want {
					t.Errorf("%s: tier total %d != %d classified faults", run.label, got, want)
				}
				if stageRec.Detected != res.Detected || stageRec.Undetectable != res.Undetectable ||
					stageRec.Aborted != res.Aborted {
					t.Errorf("%s: stage partition %d/%d/%d != result %d/%d/%d", run.label,
						stageRec.Detected, stageRec.Undetectable, stageRec.Aborted,
						res.Detected, res.Undetectable, res.Aborted)
				}
				// Verdict statuses mirror the fault list itself.
				byID := map[int]string{}
				for _, rec := range run.recs {
					if rec.T == "verdict" {
						byID[rec.Fault] = rec.Status
					}
				}
				for _, f := range run.d.Faults.Faults {
					if got := byID[f.ID]; got != f.Status.String() {
						t.Errorf("%s: fault %d ledger status %q != list status %q",
							run.label, f.ID, got, f.Status.String())
					}
				}
			}
		})
	}
}

// TestLedgerFullSweepCoverage: across a full q-sweep, every analysis stage's
// verdict block is complete (one verdict per fault of that stage's
// fault list) and iteration records carry the tier work of the committed
// design — the "exactly once per analysis" shape obsdiff's stage pairing
// relies on.
func TestLedgerFullSweepCoverage(t *testing.T) {
	name := "sparc_spu"
	env := flow.NewEnv()
	env.FaultCache = fcache.New()
	c := bench.MustBuild(name, env.Lib)
	orig, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ledger := obs.NewLedger(&buf)
	env.Ledger = ledger
	r, err := resyn.RunFrom(env, orig, resyn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadLedger(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	var stages, iters int
	var open *obs.LedgerRecord // current stage
	pending := 0               // verdicts still owed to it
	for i := range recs {
		rec := recs[i]
		switch rec.T {
		case "stage":
			if pending != 0 {
				t.Fatalf("stage %q started with %d verdicts missing from the previous stage", rec.Stage, pending)
			}
			if rec.Stage != "analyze-incr" && rec.Stage != "verify" {
				t.Errorf("sweep ledger contains unexpected stage %q", rec.Stage)
			}
			stages++
			open = &recs[i]
			pending = rec.Faults
		case "verdict":
			if open == nil {
				t.Fatal("verdict before any stage record")
			}
			pending--
		case "iter":
			iters++
		}
	}
	if pending != 0 {
		t.Errorf("final stage short %d verdicts", pending)
	}
	if iters != len(r.Trace) {
		t.Errorf("%d iter records for %d accepted iterations", iters, len(r.Trace))
	}
	if stages == 0 {
		t.Fatal("sweep emitted no analysis stages")
	}
	// The sweep result's aggregate tier totals cover at least the per-
	// iteration breakdowns it recorded.
	var fromIters obs.TierCounts
	for _, it := range r.Iters {
		fromIters.Merge(it.Tiers)
	}
	if fromIters.Total() > r.Tiers.Total() {
		t.Errorf("iteration tier totals %d exceed sweep aggregate %d", fromIters.Total(), r.Tiers.Total())
	}
}
