// Differential harness for the static implication screen: with
// -staticproof on, every number the pipeline reports must stay
// byte-identical to a screen-off run — the screen may only remove
// searches whose outcome (ProvenImpossible) it already knows, never
// change a verdict, a test vector, or a table column. This is the
// soundness gate behind making ModeScreen the flow default.
package dfmresyn

import (
	"reflect"
	"testing"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/implic"
	"dfmresyn/internal/report"
	"dfmresyn/internal/resyn"
)

func analyzeMode(t *testing.T, name string, mode implic.Mode) *flow.Design {
	t.Helper()
	env := flow.NewEnv()
	env.StaticProof = mode
	c := bench.MustBuild(name, env.Lib)
	d, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatalf("%s (%v): %v", name, mode, err)
	}
	return d
}

// TestStaticProofDifferential: screen-on vs screen-off over the
// benchmark suite — identical statuses, identical test sets, identical
// Table I / Table II rows, and a nonzero total static yield.
func TestStaticProofDifferential(t *testing.T) {
	names := bench.Names
	if testing.Short() {
		// The fast subset still spans high yield (sparc_fpu 99% backtrack
		// cut), near-zero yield (sparc_tlu) and branch-fault-heavy
		// circuits (sparc_ifu).
		names = []string{"sparc_spu", "sparc_tlu", "sparc_ifu", "sparc_fpu"}
	}
	totalProven := 0
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			off := analyzeMode(t, name, implic.ModeOff)
			scr := analyzeMode(t, name, implic.ModeScreen)
			if off.Result.StaticProven != 0 {
				t.Fatalf("screen-off run reports StaticProven=%d", off.Result.StaticProven)
			}
			totalProven += scr.Result.StaticProven
			if !reflect.DeepEqual(statuses(scr), statuses(off)) {
				t.Error("fault statuses differ between -staticproof=off and screen")
			}
			if !reflect.DeepEqual(scr.Result.Tests, off.Result.Tests) {
				t.Errorf("test vectors differ (%d off vs %d screen)",
					len(off.Result.Tests), len(scr.Result.Tests))
			}
			if r0, r1 := report.TableIRow(name, off.Metrics()), report.TableIRow(name, scr.Metrics()); r0 != r1 {
				t.Errorf("Table I rows differ:\n  off:    %s\n  screen: %s", r0, r1)
			}
			if r0, r1 := report.TableIIOrigRow(name, off.Metrics()), report.TableIIOrigRow(name, scr.Metrics()); r0 != r1 {
				t.Errorf("Table II rows differ:\n  off:    %s\n  screen: %s", r0, r1)
			}
		})
	}
	if totalProven == 0 {
		t.Error("the screen proved zero faults across the whole suite; the pre-ATPG phase is not running")
	}
}

// TestStaticProofResynSweep: the full resynthesis q-sweep (default
// MaxQ) with the screen on renders the same Table II resyn row and
// Fig. 2 trace as with it off, on two circuits with different yields.
func TestStaticProofResynSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("resynthesis sweep is slow under -short")
	}
	for _, name := range []string{"sparc_spu", "sparc_tlu"} {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func(mode implic.Mode) (string, string, int) {
				env := flow.NewEnv()
				env.StaticProof = mode
				c := bench.MustBuild(name, env.Lib)
				orig, err := env.Analyze(c, geom.Rect{})
				if err != nil {
					t.Fatal(err)
				}
				r, err := resyn.RunFrom(env, orig, resyn.Options{})
				if err != nil {
					t.Fatal(err)
				}
				return report.TableIIResynRow(r, 1.0), report.Fig2Trace(r),
					orig.Result.StaticProven + r.StaticProven
			}
			rowOff, traceOff, _ := run(implic.ModeOff)
			rowScr, traceScr, proven := run(implic.ModeScreen)
			if rowOff != rowScr {
				t.Errorf("resyn Table II rows differ:\n  off:    %s\n  screen: %s", rowOff, rowScr)
			}
			if traceOff != traceScr {
				t.Errorf("Fig. 2 traces differ:\n--- off ---\n%s--- screen ---\n%s", traceOff, traceScr)
			}
			if name == "sparc_spu" && proven == 0 {
				t.Error("sweep with screen on proved zero faults on sparc_spu")
			}
		})
	}
}
