// Differential harness for the spatial index: with -spatial=grid (the
// default), every artifact the pipeline produces must stay byte-identical
// to a -spatial=off run — the grid may only change *how much* geometry the
// physical scans examine, never what they find. Layouts, fault universes,
// Table I / Table II rows and the full resynthesis sweep are compared
// across the whole benchmark suite. This is the soundness gate behind
// making the grid index the flow default, and the companion to the scan
// statistics: the stats prove the work shrank, this harness proves the
// answer did not move.
package dfmresyn

import (
	"reflect"
	"testing"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/dfm"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/report"
	"dfmresyn/internal/resyn"
	"dfmresyn/internal/route"
)

func analyzeSpatial(t *testing.T, name string, mode geom.SpatialMode) *flow.Design {
	t.Helper()
	env := flow.NewEnv()
	env.Spatial = mode
	c := bench.MustBuild(name, env.Lib)
	d, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatalf("%s (%v): %v", name, mode, err)
	}
	return d
}

// TestSpatialDifferential: grid vs off over the benchmark suite —
// identical fault universes, statuses, test sets and table rows, plus the
// scan statistics asserting the grid actually did less work.
func TestSpatialDifferential(t *testing.T) {
	names := bench.Names
	if testing.Short() {
		// The fast subset spans the die-size range: the smallest circuit,
		// a mid-size one, and the largest (sparc_fpu).
		names = []string{"systemcaes", "sparc_spu", "sparc_fpu"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			off := analyzeSpatial(t, name, geom.SpatialOff)
			grd := analyzeSpatial(t, name, geom.SpatialGrid)
			if diff := dfmDiff(off, grd); diff != "" {
				t.Errorf("fault universe differs between -spatial=off and grid: %s", diff)
			}
			if !reflect.DeepEqual(statuses(grd), statuses(off)) {
				t.Error("fault statuses differ between -spatial=off and grid")
			}
			if !reflect.DeepEqual(grd.Result.Tests, off.Result.Tests) {
				t.Errorf("test vectors differ (%d off vs %d grid)",
					len(off.Result.Tests), len(grd.Result.Tests))
			}
			if r0, r1 := report.TableIRow(name, off.Metrics()), report.TableIRow(name, grd.Metrics()); r0 != r1 {
				t.Errorf("Table I rows differ:\n  off:  %s\n  grid: %s", r0, r1)
			}
			if r0, r1 := report.TableIIOrigRow(name, off.Metrics()), report.TableIIOrigRow(name, grd.Metrics()); r0 != r1 {
				t.Errorf("Table II rows differ:\n  off:  %s\n  grid: %s", r0, r1)
			}
			// The contract's other half: the grid visited strictly less
			// geometry than the naive full scans it replaced.
			gs, ns := grd.DFMStats, off.DFMStats
			if gs.BridgePairs != ns.BridgePairs {
				t.Errorf("bridge pairs examined differ: grid %d, off %d", gs.BridgePairs, ns.BridgePairs)
			}
			if gs.CellsVisited >= ns.CellsVisited {
				t.Errorf("grid visited %d cells, naive %d — no reduction", gs.CellsVisited, ns.CellsVisited)
			}
			if gs.DensityCellReads >= ns.DensityCellReads {
				t.Errorf("grid read %d density cells, naive %d — no reduction", gs.DensityCellReads, ns.DensityCellReads)
			}
			if gs.PairReduction() <= 1 {
				t.Errorf("pair reduction %.2f, want > 1", gs.PairReduction())
			}
		})
	}
}

// dfmDiff compares two designs' layouts and fault universes with the same
// differential reporters the incremental flow's -diffcheck uses.
func dfmDiff(want, got *flow.Design) string {
	if d := route.DiffLayouts(want.Lay, got.Lay); d != "" {
		return d
	}
	return dfm.DiffUniverse(want.Faults, want.DFMRep, got.Faults, got.DFMRep)
}

// TestSpatialResynSweep: a full resynthesis q-sweep (default MaxQ) — every
// incremental re-analysis included — renders the same Table II resyn row
// and Fig. 2 trace with the grid index as without it.
func TestSpatialResynSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("resynthesis sweep is slow under -short")
	}
	const name = "sparc_spu"
	run := func(mode geom.SpatialMode) (string, string) {
		env := flow.NewEnv()
		env.Spatial = mode
		c := bench.MustBuild(name, env.Lib)
		orig, err := env.Analyze(c, geom.Rect{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := resyn.RunFrom(env, orig, resyn.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return report.TableIIResynRow(r, 1.0), report.Fig2Trace(r)
	}
	rowOff, traceOff := run(geom.SpatialOff)
	rowGrd, traceGrd := run(geom.SpatialGrid)
	if rowOff != rowGrd {
		t.Errorf("resyn Table II rows differ:\n  off:  %s\n  grid: %s", rowOff, rowGrd)
	}
	if traceOff != traceGrd {
		t.Errorf("Fig. 2 traces differ:\n--- off ---\n%s--- grid ---\n%s", traceOff, traceGrd)
	}
}
