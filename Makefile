# Tier-1 gate plus convenience targets. `make check` is what CI (and the
# roadmap's verify step) runs: formatting, vet, build, race-enabled tests,
# and netlint over the shipped example and benchmark circuits.

GO ?= go

.PHONY: check fmt vet build test lint bench benchflow fuzz obs-smoke

check: fmt vet build test lint benchflow obs-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The explicit ./internal/obs vet keeps the observability layer in the gate
# even if a future package filter narrows the ./... run.
vet:
	$(GO) vet ./...
	$(GO) vet ./internal/obs

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# netlint must pass (exit 0) on every shipped circuit: the examples and the
# twelve paper benchmarks. The last step rejects committed span-trace dumps:
# -tracefile output belongs next to a run, not in the tree (golden trace
# fixtures under testdata/ are exempt).
lint:
	$(GO) run ./cmd/netlint examples/circuits/*.ckt
	$(GO) run ./cmd/netlint -bench=all
	@bad="$$(git ls-files '*.json' | grep -v '/testdata/' | \
		xargs -r grep -l '"traceEvents"' 2>/dev/null || true)"; \
	if [ -n "$$bad" ]; then \
		echo "committed Chrome trace dumps (delete them, they are run artifacts):"; \
		echo "$$bad"; exit 1; fi

bench:
	$(GO) test -bench=. -benchmem

# Machine-readable flow performance record: per-circuit Analyze wall time,
# ATPG time, and the verdict-cache hit rate of a warm re-analysis.
benchflow:
	BENCH_FLOW_OUT=BENCH_flow.json $(GO) test -run TestBenchFlowJSON .

# End-to-end smoke test of the observability exports: run the CLI on the
# fastest benchmark with tracing on, then validate both files with obscheck
# (trace_event JSON with spans; metrics snapshot with all four sections).
obs-smoke:
	@dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/dfmresyn -table2 -circuit wb_conmax -q 0 \
		-tracefile "$$dir/run.trace.json" -metricsfile "$$dir/run.metrics.json" \
		>/dev/null && \
	$(GO) run ./cmd/obscheck -trace "$$dir/run.trace.json" -metrics "$$dir/run.metrics.json"

# Short fuzz pass over the netlist parser (satellite of the lint work; the
# full corpus grows under -fuzztime as long as you let it run).
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/netlist/
