# Tier-1 gate plus convenience targets. `make check` is what CI (and the
# roadmap's verify step) runs: formatting, vet, build, race-enabled tests,
# and netlint over the shipped example and benchmark circuits.

GO ?= go

.PHONY: check fmt vet build test lint bench benchflow fuzz

check: fmt vet build test lint benchflow

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# netlint must pass (exit 0) on every shipped circuit: the examples and the
# twelve paper benchmarks.
lint:
	$(GO) run ./cmd/netlint examples/circuits/*.ckt
	$(GO) run ./cmd/netlint -bench=all

bench:
	$(GO) test -bench=. -benchmem

# Machine-readable flow performance record: per-circuit Analyze wall time,
# ATPG time, and the verdict-cache hit rate of a warm re-analysis.
benchflow:
	BENCH_FLOW_OUT=BENCH_flow.json $(GO) test -run TestBenchFlowJSON .

# Short fuzz pass over the netlist parser (satellite of the lint work; the
# full corpus grows under -fuzztime as long as you let it run).
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/netlist/
