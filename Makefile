# Tier-1 gate plus convenience targets. `make check` is what CI (and the
# roadmap's verify step) runs: formatting, vet, build, race-enabled tests,
# netlint over the shipped example and benchmark circuits, the focused race
# gate over the concurrency substrate, and the chaos smoke run.

GO ?= go

.PHONY: check fmt vet build test race lint bench benchflow bench-smoke fuzz obs-smoke chaos-smoke sat-smoke obsdiff-smoke serve-smoke

check: fmt vet build test race lint benchflow bench-smoke obs-smoke chaos-smoke sat-smoke obsdiff-smoke serve-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The explicit ./internal/obs vet keeps the observability layer in the gate
# even if a future package filter narrows the ./... run. vetdfm is the
# determinism vet suite (internal/analyzers): no wall-clock reads, global
# rand streams, or map-order-dependent output in deterministic packages.
vet:
	$(GO) vet ./...
	$(GO) vet ./internal/obs
	$(GO) run ./cmd/vetdfm

build:
	$(GO) build ./...

# The root package's differential suites (kill/resume sweeps, spatial and
# static-proof harnesses, the ledger gates) legitimately exceed go test's
# 600s default under the race detector — give them explicit headroom.
test:
	$(GO) test -race -timeout 30m ./...

# Focused race gate over the packages that own shared mutable state — the
# worker pool, the cancellation/journal substrate, and the observability
# layer — kept explicit so it survives any future narrowing of the ./...
# test run.
race:
	$(GO) test -race ./internal/par/ ./internal/resilience/ ./internal/obs/

# netlint must pass (exit 0) on every shipped circuit: the examples and the
# twelve paper benchmarks. The next step rejects committed span-trace dumps:
# -tracefile output belongs next to a run, not in the tree (golden trace
# fixtures under testdata/ are exempt). The last step rejects stray
# checkpoint journals: a *.ckpt file is a run artifact of -journal, never a
# source file (fixtures under testdata/ are exempt).
lint:
	$(GO) run ./cmd/netlint examples/circuits/*.ckt
	$(GO) run ./cmd/netlint -bench=all
	@bad="$$(git ls-files '*.json' | grep -v '/testdata/' | \
		xargs -r grep -l '"traceEvents"' 2>/dev/null || true)"; \
	if [ -n "$$bad" ]; then \
		echo "committed Chrome trace dumps (delete them, they are run artifacts):"; \
		echo "$$bad"; exit 1; fi
	@bad="$$(git ls-files '*.ckpt' | grep -v '/testdata/' || true)"; \
	if [ -n "$$bad" ]; then \
		echo "committed checkpoint journals (delete them, they are run artifacts of -journal):"; \
		echo "$$bad"; exit 1; fi

bench:
	$(GO) test -bench=. -benchmem

# Machine-readable flow performance record: per-circuit Analyze wall time,
# ATPG time, the verdict-cache hit rate of a warm re-analysis, worker
# scaling, the spatial-index scan columns, and the synthetic scale tier
# (synth1k/synth10k through the Verilog ingest path).
benchflow:
	BENCH_FLOW_OUT=BENCH_flow.json $(GO) test -run TestBenchFlowJSON -timeout 30m .

# Fast benchmark gate: every physical-path microbenchmark compiles and runs
# one iteration under the race detector, and the 10k-gate tier builds and
# checks cleanly — so `make check` catches a bit-rotted benchmark or scale
# circuit without paying for a full -bench run.
bench-smoke:
	$(GO) test -race -run 'TestScaleCircuits' -bench 'BenchmarkBuildFaults|BenchmarkRoute' \
		-benchtime=1x ./internal/bench/ ./internal/dfm/ ./internal/route/

# End-to-end smoke test of the observability exports: run the CLI on the
# fastest benchmark with tracing on, then validate both files with obscheck
# (trace_event JSON with spans; metrics snapshot with all four sections).
obs-smoke:
	@dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/dfmresyn -table2 -circuit wb_conmax -q 0 \
		-tracefile "$$dir/run.trace.json" -metricsfile "$$dir/run.metrics.json" \
		>/dev/null && \
	$(GO) run ./cmd/obscheck -trace "$$dir/run.trace.json" -metrics "$$dir/run.metrics.json"

# End-to-end chaos smoke: the same sweep with and without injected worker
# panics must print identical tables (stdout, with the wall-clock columns
# stripped), and the chaos run's stderr must report recovered panics — i.e.
# the injection actually fired and was absorbed. The awk filter drops the
# perf/incr diagnostics and the Rtime column, exactly like the CLI test.
chaos-smoke:
	@dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	filter() { awk '$$2=="perf"||$$2=="incr"||$$2=="prov"{next} $$1~/%$$/||$$1=="none"{NF--} {print}' "$$1"; }; \
	$(GO) run ./cmd/dfmresyn -table2 -trace -circuit sparc_spu \
		>"$$dir/clean.out" 2>/dev/null && \
	$(GO) run ./cmd/dfmresyn -table2 -trace -circuit sparc_spu -chaospanic 0.05 \
		>"$$dir/chaos.out" 2>"$$dir/chaos.err" && \
	filter "$$dir/clean.out" >"$$dir/clean.flt" && \
	filter "$$dir/chaos.out" >"$$dir/chaos.flt" && \
	diff -u "$$dir/clean.flt" "$$dir/chaos.flt" && \
	grep -q 'recovered=[1-9]' "$$dir/chaos.err" && \
	echo "chaos-smoke: tables identical under 5% injected panics"

# Flight-recorder smoke: two identical-config runs of the fastest benchmark
# must produce ledgers obsdiff calls equivalent (exit 0, matching digests);
# then a verdict flipped in place with sed must be caught (exit 1, not 0 and
# not a crash) — i.e. the differ is wired tightly enough to gate a CI run.
obsdiff-smoke:
	@dir="$$(mktemp -d)"; trap 'rm -rf "$$dir"' EXIT; \
	$(GO) run ./cmd/dfmresyn -table2 -circuit wb_conmax -q 0 \
		-ledger "$$dir/a.jsonl" >/dev/null 2>&1 && \
	$(GO) run ./cmd/dfmresyn -table2 -circuit wb_conmax -q 0 \
		-ledger "$$dir/b.jsonl" >/dev/null 2>&1 && \
	$(GO) run ./cmd/obsdiff "$$dir/a.jsonl" "$$dir/b.jsonl" && \
	sed '0,/"status":"detected"/s//"status":"undetectable"/' \
		"$$dir/b.jsonl" >"$$dir/flipped.jsonl" && \
	{ $(GO) run ./cmd/obsdiff "$$dir/a.jsonl" "$$dir/flipped.jsonl" 2>/dev/null; \
		rc=$$?; [ $$rc -eq 1 ] || { echo "obsdiff-smoke: injected flip exited $$rc, want 1"; exit 1; }; } && \
	echo "obsdiff-smoke: self-diff clean, injected flip caught"

# SAT escalation smoke: the CDCL core's brute-force and pigeonhole
# cross-checks, the escalation tier's differential harness (SAT verdicts ==
# unlimited PODEM on every fault model), and the flow-level determinism gate
# with forced escalations on sparc_exu. Fast (~2s) and fully deterministic.
sat-smoke:
	$(GO) test -run 'TestRandom3SATAgainstBruteForce|TestPigeonhole|TestDeterminism|TestXorChain' ./internal/sat/
	$(GO) test -run 'TestEscalat' ./internal/atpg/
	$(GO) test -run 'TestSATEscalationDeterminism' .

# Analysis-server chaos smoke, across real OS processes: start dfmserve,
# submit a q-sweep, kill -9 the server the moment the job's checkpoint hits
# disk, restart on the same data directory, and assert the re-admitted job
# resumes to a ledger digest byte-identical to an uninterrupted run's —
# then that a second cold process reports warm hits from the shared verdict
# store. (The same test runs under `make test`; this target keeps the
# acceptance run invocable, and debuggable, on its own.)
serve-smoke:
	$(GO) test -run 'TestServeSmoke' -v -timeout 15m ./cmd/dfmserve/

# Short fuzz passes over every hand-rolled parser/decoder: the canonical
# netlist reader, the exact-order checkpoint codec, the journal envelope,
# and the sweep-checkpoint loader. Corpora grow under -fuzztime as long as
# you let them run.
fuzz:
	$(GO) test -fuzz=FuzzRead$$ -fuzztime=30s ./internal/netlist/
	$(GO) test -fuzz=FuzzReadExact -fuzztime=30s ./internal/netlist/
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/resilience/
	$(GO) test -fuzz=FuzzCheckpointDecode -fuzztime=30s ./internal/resyn/
	$(GO) test -fuzz=FuzzImplic -fuzztime=30s ./internal/implic/
	$(GO) test -fuzz=FuzzCNF -fuzztime=30s ./internal/atpg/
	$(GO) test -fuzz=FuzzLedger -fuzztime=30s ./internal/obs/
	$(GO) test -fuzz=FuzzVstore -fuzztime=30s ./internal/vstore/
