// Benchmark harness regenerating every table and figure of the paper's
// evaluation. Each benchmark prints the corresponding rows/series; absolute
// numbers differ from the paper (the substrate is a from-scratch simulator,
// not the authors' commercial testbed) but the shape — who wins, by what
// factor, where the cluster sizes land — holds. Run with:
//
//	go test -bench=TableI -benchmem          # Table I
//	go test -bench='TableII/tv80' -benchmem  # one Table II circuit
//	go test -bench=. -benchmem               # everything (slow)
package dfmresyn

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/doublefault"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/library"
	"dfmresyn/internal/lint"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/report"
	"dfmresyn/internal/resyn"
	"dfmresyn/internal/sta"
	"dfmresyn/internal/synth"
	"dfmresyn/internal/yield"
)

func newEnv() *flow.Env {
	return flow.NewEnv()
}

// lintBenchOnce guards a one-time netlint smoke check over every benchmark
// circuit, so a corrupt generator fails fast. The sync.Once plus the
// b.ResetTimer at each call site keep the check out of the reported numbers.
var (
	lintBenchOnce sync.Once
	lintBenchErr  error
)

func lintBenchCircuits(b *testing.B) {
	b.Helper()
	lintBenchOnce.Do(func() {
		lib := library.OSU018Like()
		for _, name := range bench.Names {
			c := bench.MustBuild(name, lib)
			fs := lint.Run(&lint.Context{Circuit: c})
			if n := lint.CountAtLeast(fs, lint.Error); n > 0 {
				lintBenchErr = fmt.Errorf("bench circuit %s has %d lint errors (run: go run ./cmd/netlint -bench=%s)", name, n, name)
				return
			}
		}
	})
	if lintBenchErr != nil {
		b.Fatal(lintBenchErr)
	}
	b.ResetTimer()
}

// BenchmarkTableI regenerates Table I: the clustering of undetectable DFM
// faults in the original designs of aes_core, des_perf, sparc_exu and
// sparc_fpu.
func BenchmarkTableI(b *testing.B) {
	lintBenchCircuits(b)
	for i := 0; i < b.N; i++ {
		env := newEnv()
		fmt.Println("\nTABLE I. CLUSTERED UNDETECTABLE FAULTS")
		fmt.Println(report.TableIHeader())
		for _, name := range bench.TableINames {
			c := bench.MustBuild(name, env.Lib)
			d, err := env.Analyze(c, geom.Rect{})
			if err != nil {
				b.Fatal(err)
			}
			fmt.Println(report.TableIRow(name, d.Metrics()))
		}
	}
}

// BenchmarkTableII regenerates Table II per circuit: the orig row, the full
// q-sweep resynthesis, and the resynthesized row including relative delay,
// power and Rtime.
func BenchmarkTableII(b *testing.B) {
	for _, name := range bench.Names {
		name := name
		b.Run(name, func(b *testing.B) {
			lintBenchCircuits(b)
			for i := 0; i < b.N; i++ {
				env := newEnv()
				c := bench.MustBuild(name, env.Lib)
				t0 := time.Now()
				orig, err := env.Analyze(c, geom.Rect{})
				if err != nil {
					b.Fatal(err)
				}
				baseline := time.Since(t0)
				t1 := time.Now()
				r, err := resyn.RunFrom(env, orig, resyn.Options{})
				if err != nil {
					b.Fatal(err)
				}
				rtime := float64(time.Since(t1)) / float64(baseline)
				fmt.Println(report.TableIIHeader())
				fmt.Println(report.TableIIOrigRow(name, r.Orig.Metrics()))
				fmt.Println(report.TableIIResynRow(r, rtime))
			}
		})
	}
}

// BenchmarkFig1Adjacency regenerates the Fig. 1 definition check: of the
// three two-gate arrangements, only direct drive makes gates structurally
// adjacent.
func BenchmarkFig1Adjacency(b *testing.B) {
	lib := library.OSU018Like()
	for i := 0; i < b.N; i++ {
		c := netlist.New("fig1", lib)
		x := c.AddPI("x")
		y := c.AddPI("y")
		g1 := c.AddGate("g1", lib.ByName("INVX1"), x)
		g2 := c.AddGate("g2", lib.ByName("INVX1"), x) // (a) shared fanin
		g3 := c.AddGate("g3", lib.ByName("NAND2X1"), y, g2)
		g4 := c.AddGate("g4", lib.ByName("INVX1"), g1) // (c) direct drive
		c.MarkPO(g3)
		c.MarkPO(g4)
		a := netlist.Adjacent(g1.Driver, g2.Driver)
		bb := netlist.Adjacent(g2.Driver, g4.Driver)
		cc := netlist.Adjacent(g1.Driver, g4.Driver)
		if i == 0 {
			fmt.Printf("\nFig. 1 adjacency: (a) shared-fanin=%v (b) unrelated=%v (c) direct-drive=%v\n", a, bb, cc)
		}
		if a || bb || !cc {
			b.Fatal("Fig. 1 adjacency semantics broken")
		}
	}
}

// BenchmarkFig2PhaseTrace regenerates the Fig. 2 series: the iteration-by-
// iteration evolution of U and S_max as phase one breaks the largest
// clusters and phase two sweeps the rest.
func BenchmarkFig2PhaseTrace(b *testing.B) {
	lintBenchCircuits(b)
	for i := 0; i < b.N; i++ {
		env := newEnv()
		c := bench.MustBuild("aes_core", env.Lib)
		r, err := resyn.Run(env, c, resyn.Options{})
		if err != nil {
			b.Fatal(err)
		}
		fmt.Println("\nFig. 2 series (aes_core): cluster evolution over accepted iterations")
		fmt.Print(report.Fig2Trace(r))
	}
}

// BenchmarkRestrictedLibrary regenerates the Section IV ablation: removing
// the seven cells with the most internal faults from the library outright
// (instead of targeted resynthesis) blows the delay constraint — the paper
// measured 130%/137% delay and 109% power for sparc_ifu/sparc_fpu.
func BenchmarkRestrictedLibrary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		ordered := env.Lib.SortedBy(func(c *library.Cell) float64 {
			return float64(env.Prof.InternalFaultCount(c))
		})
		dropped := map[*library.Cell]bool{}
		fmt.Println("\nRestricted-library ablation: dropping the 7 most fault-rich cells:")
		for _, c := range ordered[:7] {
			dropped[c] = true
			fmt.Printf("  %s (%d internal faults)\n", c.Name, env.Prof.InternalFaultCount(c))
		}
		allowed := func(c *library.Cell) bool { return !dropped[c] }

		for _, name := range []string{"sparc_ifu", "sparc_fpu"} {
			c := bench.MustBuild(name, env.Lib)
			region := netlist.ExtractRegion(c.Gates)
			// Baseline: full-library whole-circuit synthesis (the paper
			// compares two synthesized designs differing only in the
			// allowed cells).
			rsFull, err := synth.SynthesizeRegion(c, region, env.Mapper,
				func(*library.Cell) bool { return true }, synth.Delay, nil, "fl_")
			if err != nil {
				b.Fatal(err)
			}
			fullC, err := rsFull.Rebuild(c)
			if err != nil {
				b.Fatal(err)
			}
			orig, err := env.Analyze(fullC, geom.Rect{})
			if err != nil {
				b.Fatal(err)
			}
			rs, err := synth.SynthesizeRegion(c, region, env.Mapper, allowed, synth.Delay, nil, "rl_")
			if err != nil {
				b.Fatal(err)
			}
			nc, err := rs.Rebuild(c)
			if err != nil {
				b.Fatal(err)
			}
			d, err := env.Analyze(nc, orig.Die) // same floorplan
			if err != nil {
				fmt.Printf("%-10s restricted synthesis does not fit the original floorplan: %v\n", name, err)
				continue
			}
			fmt.Printf("%-10s delay %.0f%%  power %.0f%%  (paper: 130-137%% / 109%%)\n",
				name,
				100*d.Timing.CriticalDelay/orig.Timing.CriticalDelay,
				100*d.Power.Total/orig.Power.Total)
		}
	}
}

// BenchmarkAblationBacktrackGroup compares the paper's sqrt(n) backtracking
// group size against one-at-a-time and all-at-once on one circuit.
func BenchmarkAblationBacktrackGroup(b *testing.B) {
	variants := []struct {
		name  string
		group int
	}{
		{"sqrt(n)", 0},
		{"one-by-one", 1},
		{"all-at-once", -1},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env := newEnv()
				c := bench.MustBuild("sparc_exu", env.Lib)
				t0 := time.Now()
				r, err := resyn.Run(env, c, resyn.Options{BacktrackGroup: v.group})
				if err != nil {
					b.Fatal(err)
				}
				fmt.Printf("backtrack %-11s U %d->%d synth=%d pd=%d t=%.1fs\n",
					v.name, r.Orig.Faults.Count().Undetectable,
					r.Final.Faults.Count().Undetectable,
					r.SynthCalls, r.PDCalls, time.Since(t0).Seconds())
			}
		})
	}
}

// BenchmarkAblationCellOrder compares exclusion orders: by internal fault
// count (the paper), by area, and by name.
func BenchmarkAblationCellOrder(b *testing.B) {
	variants := []struct {
		name  string
		order resyn.CellOrder
	}{
		{"internal-faults", resyn.OrderInternalFaults},
		{"area", resyn.OrderArea},
		{"name", resyn.OrderName},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env := newEnv()
				c := bench.MustBuild("systemcaes", env.Lib)
				r, err := resyn.Run(env, c, resyn.Options{CellOrder: v.order})
				if err != nil {
					b.Fatal(err)
				}
				fmt.Printf("order %-16s U %d->%d Smax %d->%d synth=%d\n",
					v.name, r.Orig.Faults.Count().Undetectable,
					r.Final.Faults.Count().Undetectable,
					len(r.Orig.Clusters.Smax()), len(r.Final.Clusters.Smax()),
					r.SynthCalls)
			}
		})
	}
}

// BenchmarkAblationPhases compares the full two-phase procedure against
// phase two alone.
func BenchmarkAblationPhases(b *testing.B) {
	variants := []struct {
		name string
		skip bool
	}{
		{"both-phases", false},
		{"phase2-only", true},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env := newEnv()
				c := bench.MustBuild("aes_core", env.Lib)
				r, err := resyn.Run(env, c, resyn.Options{SkipPhase1: v.skip})
				if err != nil {
					b.Fatal(err)
				}
				mf := r.Final.Metrics()
				fmt.Printf("phases %-12s U %d->%d Smax %d->%d (%%Smax_all %.2f)\n",
					v.name, r.Orig.Faults.Count().Undetectable, mf.U,
					len(r.Orig.Clusters.Smax()), mf.Smax, mf.PctSmaxAll)
			}
		})
	}
}

// BenchmarkAblationEarlyStop compares the rising-U early phase termination
// against exhaustive cell scans.
func BenchmarkAblationEarlyStop(b *testing.B) {
	variants := []struct {
		name string
		off  bool
	}{
		{"early-stop", false},
		{"exhaustive", true},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env := newEnv()
				c := bench.MustBuild("wb_conmax", env.Lib)
				t0 := time.Now()
				r, err := resyn.Run(env, c, resyn.Options{NoEarlyStop: v.off})
				if err != nil {
					b.Fatal(err)
				}
				fmt.Printf("earlystop %-11s U %d->%d synth=%d pd=%d t=%.1fs\n",
					v.name, r.Orig.Faults.Count().Undetectable,
					r.Final.Faults.Count().Undetectable,
					r.SynthCalls, r.PDCalls, time.Since(t0).Seconds())
			}
		})
	}
}

// BenchmarkATPGThroughput measures raw test-generation speed on the largest
// Table I circuit (per-fault cost of the full DFM universe).
func BenchmarkATPGThroughput(b *testing.B) {
	env := newEnv()
	c := bench.MustBuild("sparc_exu", env.Lib)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := env.Analyze(c, geom.Rect{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(d.Faults.Len()), "faults")
	}
}

// BenchmarkPhysicalDesign measures one place-and-route pass.
func BenchmarkPhysicalDesign(b *testing.B) {
	env := newEnv()
	c := bench.MustBuild("aes_core", env.Lib)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.PhysicalOnly(c, geom.Rect{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTA measures static timing analysis alone.
func BenchmarkSTA(b *testing.B) {
	env := newEnv()
	c := bench.MustBuild("aes_core", env.Lib)
	d, err := env.PhysicalOnly(c, geom.Rect{})
	if err != nil {
		b.Fatal(err)
	}
	load := sta.LoadFromLayout(d.Lay)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sta.Analyze(c, load)
	}
}

// BenchmarkDoubleFaultBaseline runs the alternative the paper argues
// against (its refs [14][15]): additional tests for double faults made of
// an undetectable fault and an adjacent detectable one. The headline
// comparison is test-set growth: the double-fault approach inflates T while
// leaving U untouched, whereas resynthesis removes U with T nearly flat.
func BenchmarkDoubleFaultBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		fmt.Println("\nDouble-fault baseline vs resynthesis (test-set growth):")
		for _, name := range []string{"systemcaes", "sparc_ifu"} {
			c := bench.MustBuild(name, env.Lib)
			orig, err := env.Analyze(c, geom.Rect{})
			if err != nil {
				b.Fatal(err)
			}
			df := doublefault.Run(orig, 3, 1)
			r, err := resyn.RunFrom(env, orig, resyn.Options{})
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("%-11s double-fault: +%d tests (tester time %.2fx), U stays %d\n",
				name, df.ExtraTests, df.TesterTimeRel, orig.Faults.Count().Undetectable)
			fmt.Printf("%-11s resynthesis:  T %d -> %d, U %d -> %d\n",
				"", len(orig.Result.Tests), len(r.Final.Result.Tests),
				orig.Faults.Count().Undetectable, r.Final.Faults.Count().Undetectable)
		}
	}
}

// BenchmarkDPPMImprovement quantifies the paper's motivation: the
// test-escape DPPM attributable to undetectable-fault clusters, before and
// after resynthesis.
func BenchmarkDPPMImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv()
		m := yield.DefaultModel()
		fmt.Println("\nTest-escape DPPM before/after resynthesis:")
		for _, name := range []string{"systemcaes", "wb_conmax", "sparc_ifu"} {
			c := bench.MustBuild(name, env.Lib)
			orig, err := env.Analyze(c, geom.Rect{})
			if err != nil {
				b.Fatal(err)
			}
			r, err := resyn.RunFrom(env, orig, resyn.Options{})
			if err != nil {
				b.Fatal(err)
			}
			before := m.Assess(orig)
			after := m.Assess(r.Final)
			fmt.Printf("%-11s %.2f -> %.2f DPPM (%.1fx lower; clustered share %.0f%% -> %.0f%%)\n",
				name, before.DPPM, after.DPPM, m.Improvement(orig, r.Final),
				100*before.ClusteredRisk, 100*after.ClusteredRisk)
		}
	}
}
