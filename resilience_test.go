// Resilience gates for the pipeline's own execution: a sweep killed after
// any accepted iteration and resumed from its journal must reproduce the
// uninterrupted run byte for byte; injected worker panics and cache
// corruption must never change a reported number or crash the process; and
// cancellation must abort at deterministic boundaries with an honest
// partial result.
package dfmresyn

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/chaos"
	"dfmresyn/internal/fault"
	"dfmresyn/internal/fcache"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/implic"
	"dfmresyn/internal/report"
	"dfmresyn/internal/resilience"
	"dfmresyn/internal/resyn"
)

// sweep runs the full q-sweep on a named circuit and renders the rows the
// CLI prints, so comparisons happen on the exact bytes a user sees. The
// rtime column is fed a constant: wall time is the one column that can
// never be replayed.
func sweepRows(t *testing.T, name string, opt resyn.Options, resumeFrom string) (*resyn.Result, string) {
	t.Helper()
	env := flow.NewEnv()
	c := bench.MustBuild(name, env.Lib)
	orig, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	var r *resyn.Result
	if resumeFrom != "" {
		r, err = resyn.Resume(env, orig, resumeFrom, opt)
	} else {
		r, err = resyn.RunFrom(env, orig, opt)
	}
	if err != nil && !errors.Is(err, resilience.ErrInterrupted) {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("nil result")
	}
	rows := report.TableIIOrigRow(name, r.Orig.Metrics()) + "\n" +
		report.TableIIResynRow(r, 1.0) + "\n" +
		report.Fig2Trace(r)
	return r, rows
}

// TestKillAndResume: for two circuits across the full q-sweep, a run
// stopped (simulated SIGKILL) after iteration k and resumed from its
// journal produces byte-identical Table II and Fig. 2 output to the
// uninterrupted golden run — for every meaningful kill point k.
func TestKillAndResume(t *testing.T) {
	for _, name := range []string{"sparc_spu", "sparc_tlu"} {
		name := name
		t.Run(name, func(t *testing.T) {
			golden, goldenRows := sweepRows(t, name, resyn.Options{}, "")
			commits := len(golden.Trace)
			if commits == 0 {
				t.Fatalf("%s: golden sweep accepted no iterations; kill-and-resume needs at least one", name)
			}
			kills := []int{1}
			if commits > 1 {
				kills = append(kills, (commits+1)/2, commits)
			}
			for _, k := range kills {
				journal := filepath.Join(t.TempDir(), "sweep.ckpt")
				killed, _ := sweepRows(t, name, resyn.Options{Journal: journal, StopAfterCommits: k}, "")
				if !killed.Interrupted {
					t.Fatalf("kill at %d/%d commits: run not marked Interrupted", k, commits)
				}
				if len(killed.Trace) != k {
					t.Fatalf("kill at %d: %d commits survived", k, len(killed.Trace))
				}
				resumed, resumedRows := sweepRows(t, name, resyn.Options{}, journal)
				if !resumed.Resumed || resumed.ReplayedCommits != k {
					t.Errorf("kill at %d: resumed run replayed %d commits (Resumed=%v)",
						k, resumed.ReplayedCommits, resumed.Resumed)
				}
				if resumedRows != goldenRows {
					t.Errorf("kill at %d/%d: resumed output differs from golden\n--- golden:\n%s--- resumed:\n%s",
						k, commits, goldenRows, resumedRows)
				}
			}
		})
	}
}

// TestResumeRejectsMismatchedRun: a journal must only resume the run it
// belongs to — wrong circuit, wrong seed, and wrong options are all hard
// errors, never a silent partial resume.
func TestResumeRejectsMismatchedRun(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.ckpt")
	if r, _ := sweepRows(t, "sparc_spu", resyn.Options{Journal: journal, StopAfterCommits: 1}, ""); !r.Interrupted {
		t.Fatal("setup: sweep was not interrupted")
	}

	env := flow.NewEnv()
	wrongC := bench.MustBuild("sparc_tlu", env.Lib)
	wrongOrig, err := env.Analyze(wrongC, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resyn.Resume(env, wrongOrig, journal, resyn.Options{}); err == nil {
		t.Error("journal resumed a different circuit")
	}

	env2 := flow.NewEnv()
	env2.Seed = 99
	env2.ATPG.Seed = 99
	c := bench.MustBuild("sparc_spu", env2.Lib)
	orig2, err := env2.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resyn.Resume(env2, orig2, journal, resyn.Options{}); err == nil {
		t.Error("journal resumed under a different seed")
	}

	env3 := flow.NewEnv()
	c3 := bench.MustBuild("sparc_spu", env3.Lib)
	orig3, err := env3.Analyze(c3, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resyn.Resume(env3, orig3, journal, resyn.Options{MaxQ: 2}); err == nil {
		t.Error("journal resumed under different options")
	}
}

// TestChaosPanicRecovery: with worker panics injected at a 5% seed-driven
// rate, analysis completes with the same fault tables as an undisturbed
// run, a non-empty recovery count, an empty quarantine, and zero process
// crashes — at more than one worker count.
func TestChaosPanicRecovery(t *testing.T) {
	for _, name := range []string{"wb_conmax", "sparc_ifu"} {
		name := name
		t.Run(name, func(t *testing.T) {
			analyze := func(workers int, inject func(int, int) bool) *flow.Design {
				env := flow.NewEnv()
				env.Workers = workers
				env.ATPG.InjectPanic = inject
				c := bench.MustBuild(name, env.Lib)
				d, err := env.Analyze(c, geom.Rect{})
				if err != nil {
					t.Fatal(err)
				}
				return d
			}
			ref := analyze(1, nil)
			refRow := report.TableIRow(name, ref.Metrics())
			for _, workers := range []int{1, 8} {
				got := analyze(workers, chaos.Panics(1234, 0.05))
				if got.Result.Recovered == 0 {
					t.Errorf("workers=%d: 5%% injection recovered no panics", workers)
				}
				if len(got.Result.Quarantined) != 0 {
					t.Errorf("workers=%d: retried panics still quarantined %d faults", workers, len(got.Result.Quarantined))
				}
				if row := report.TableIRow(name, got.Metrics()); row != refRow {
					t.Errorf("workers=%d: chaos changed the table\n  clean: %s\n  chaos: %s", workers, refRow, row)
				}
			}
		})
	}
}

// TestChaosQuarantine: a fault whose search panics on the pooled worker
// AND the fresh retry is quarantined as Aborted — an honest "the engine
// could not finish" — while every other verdict matches the clean run.
func TestChaosQuarantine(t *testing.T) {
	name := "wb_conmax"
	env := flow.NewEnv()
	c := bench.MustBuild(name, env.Lib)
	clean, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}

	env2 := flow.NewEnv()
	// The static screen proves away most of wb_conmax's searches, which
	// starves a 2% per-search injection of targets; quarantine is about
	// the search path, so give the injector the full search population.
	env2.StaticProof = implic.ModeOff
	env2.ATPG.InjectPanic = chaos.StubbornPanics(77, 0.02)
	c2 := bench.MustBuild(name, env2.Lib)
	d, err := env2.Analyze(c2, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Result.Quarantined) == 0 {
		t.Fatal("stubborn 2% injection quarantined nothing")
	}
	quar := map[int]bool{}
	for _, id := range d.Result.Quarantined {
		quar[id] = true
	}
	for i, f := range d.Faults.Faults {
		if quar[f.ID] {
			if f.Status != fault.Aborted {
				t.Errorf("quarantined fault %d has status %v, want Aborted", f.ID, f.Status)
			}
			continue
		}
		if cs := clean.Faults.Faults[i].Status; f.Status != cs {
			// A quarantined fault's missing tests can only shrink the
			// detected set of *other* faults if collateral detection is
			// involved; statuses are still sound, but for this gate we
			// require untouched faults to classify identically.
			t.Errorf("untouched fault %d: status %v differs from clean %v", f.ID, f.Status, cs)
		}
	}
}

// TestChaosCacheCorruption: damaging a warm verdict cache yields
// recompute-and-warn — the corrupt counter rises, and the re-analysis
// matches an uncached run verdict for verdict — never a differing table.
func TestChaosCacheCorruption(t *testing.T) {
	name := "sparc_ifu"
	env := flow.NewEnv()
	c := bench.MustBuild(name, env.Lib)
	clean, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}

	env.FaultCache = fcache.New()
	defer func() { env.FaultCache = nil }()
	if _, err := env.Analyze(c, geom.Rect{}); err != nil {
		t.Fatal(err)
	}
	damaged := chaos.CorruptCache(env.FaultCache, 99, 0.5)
	if damaged == 0 {
		t.Fatal("corruption injector damaged nothing")
	}
	redo, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	if got := env.FaultCache.Stats().Corrupt; got == 0 {
		t.Error("integrity check dropped no entries despite injected corruption")
	}
	for i, f := range redo.Faults.Faults {
		if cs := clean.Faults.Faults[i].Status; f.Status != cs {
			t.Errorf("fault %d: verdict through corrupted cache %v differs from clean %v", f.ID, f.Status, cs)
		}
	}
	if r1, r2 := report.TableIRow(name, clean.Metrics()), report.TableIRow(name, redo.Metrics()); r1 != r2 {
		t.Errorf("corrupted cache changed the table\n  clean: %s\n  redo:  %s", r1, r2)
	}
}

// TestCancelledAnalyze: a cancelled context aborts the analysis with
// ErrInterrupted — at the entry boundary when already cancelled, and
// cooperatively mid-run — and the resolved-fault prefix it reports is
// consistent (every listed fault carries a final status).
func TestCancelledAnalyze(t *testing.T) {
	env := flow.NewEnv()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env.Ctx = ctx
	c := bench.MustBuild("wb_conmax", env.Lib)
	if _, err := env.Analyze(c, geom.Rect{}); !errors.Is(err, resilience.ErrInterrupted) {
		t.Fatalf("pre-cancelled Analyze returned %v, want ErrInterrupted", err)
	}

	// Cooperative mid-run cancellation through the sweep: stop the sweep's
	// own context after the original analysis, then check the sweep
	// reports an interrupted, consistent prefix.
	env2 := flow.NewEnv()
	c2 := bench.MustBuild("sparc_spu", env2.Lib)
	orig, err := env2.Analyze(c2, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	env2.Ctx = ctx2
	r, err := resyn.RunFrom(env2, orig, resyn.Options{})
	if !errors.Is(err, resilience.ErrInterrupted) {
		t.Fatalf("cancelled sweep returned %v, want ErrInterrupted", err)
	}
	if r == nil || !r.Interrupted {
		t.Fatal("cancelled sweep did not mark its partial result Interrupted")
	}
	if r.Final == nil || len(r.Trace) != 0 {
		t.Errorf("immediately-cancelled sweep committed %d iterations; Final nil=%v", len(r.Trace), r.Final == nil)
	}
}
