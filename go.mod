module dfmresyn

go 1.22
