// BENCH_flow.json emitter: a machine-readable per-circuit record of the
// flow's performance — Analyze wall time, the ATPG share of it, and the
// verdict-cache hit rate of a warm re-analysis. Guarded by BENCH_FLOW_OUT so
// plain `go test` stays silent; `make benchflow` writes BENCH_flow.json.
package dfmresyn

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/fcache"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/par"
)

type benchFlowRow struct {
	Circuit        string  `json:"circuit"`
	Gates          int     `json:"gates"`
	Faults         int     `json:"faults"`
	Tests          int     `json:"tests"`
	AnalyzeSeconds float64 `json:"analyze_seconds"`
	ATPGSeconds    float64 `json:"atpg_seconds"`
	WarmATPGSecs   float64 `json:"warm_atpg_seconds"`
	CacheHitRate   float64 `json:"warm_cache_hit_rate"`
}

type benchFlowReport struct {
	Workers   int            `json:"workers"`
	GoMaxProc int            `json:"gomaxprocs"`
	Rows      []benchFlowRow `json:"rows"`
}

func TestBenchFlowJSON(t *testing.T) {
	out := os.Getenv("BENCH_FLOW_OUT")
	if out == "" {
		t.Skip("set BENCH_FLOW_OUT=<path> to emit the flow benchmark JSON")
	}
	rep := benchFlowReport{Workers: par.Count(0), GoMaxProc: runtime.GOMAXPROCS(0)}
	for _, name := range bench.Names {
		env := flow.NewEnv()
		env.FaultCache = fcache.New()
		c := bench.MustBuild(name, env.Lib)

		t0 := time.Now()
		cold, err := env.Analyze(c, geom.Rect{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		analyze := time.Since(t0)

		warm, err := env.Analyze(c, geom.Rect{})
		if err != nil {
			t.Fatalf("%s warm: %v", name, err)
		}
		hit := 0.0
		if warm.Result.CacheLookups > 0 {
			hit = float64(warm.Result.CacheHits) / float64(warm.Result.CacheLookups)
		}
		rep.Rows = append(rep.Rows, benchFlowRow{
			Circuit:        name,
			Gates:          len(cold.C.Gates),
			Faults:         cold.Faults.Len(),
			Tests:          len(cold.Result.Tests),
			AnalyzeSeconds: analyze.Seconds(),
			ATPGSeconds:    cold.ATPGTime.Seconds(),
			WarmATPGSecs:   warm.ATPGTime.Seconds(),
			CacheHitRate:   hit,
		})
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d circuits)", out, len(rep.Rows))
}
