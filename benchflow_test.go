// BENCH_flow.json emitter: a machine-readable per-circuit record of the
// flow's performance — Analyze wall time, the ATPG share of it, the
// verdict-cache hit rate of a warm re-analysis, and the speedup of an
// incremental physical re-analysis over a warm full one. Guarded by
// BENCH_FLOW_OUT so plain `go test` stays silent; `make benchflow` writes
// BENCH_flow.json.
package dfmresyn

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/dfm"
	"dfmresyn/internal/fcache"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/implic"
	"dfmresyn/internal/obs"
	"dfmresyn/internal/par"
	"dfmresyn/internal/verilog"
)

type benchFlowRow struct {
	Circuit        string  `json:"circuit"`
	Gates          int     `json:"gates"`
	Faults         int     `json:"faults"`
	Tests          int     `json:"tests"`
	AnalyzeSeconds float64 `json:"analyze_seconds"`
	ATPGSeconds    float64 `json:"atpg_seconds"`
	WarmAnalyzeSec float64 `json:"warm_analyze_seconds"`
	WarmATPGSecs   float64 `json:"warm_atpg_seconds"`
	CacheHitRate   float64 `json:"warm_cache_hit_rate"`
	// Incremental re-analysis of the same netlist against the cold
	// design, with the same warm verdict cache as the warm row.
	IncrAnalyzeSec float64 `json:"incr_analyze_seconds"`
	IncrATPGSecs   float64 `json:"incr_atpg_seconds"`
	IncrSpeedup    float64 `json:"incr_speedup"`
	// The physical columns subtract the ATPG share from each side: ATPG
	// runs against the same warm cache in both rows, so this ratio
	// isolates what the dirty-region pipeline actually saves on
	// place/route/DFM.
	PhysFullSecs int64   `json:"warm_phys_micros"`
	PhysIncrSecs int64   `json:"incr_phys_micros"`
	PhysSpeedup  float64 `json:"phys_speedup"`
	NetsReused   int     `json:"incr_nets_reused"`
	NetsRerouted int     `json:"incr_nets_rerouted"`
	// Backtrack tail of the static implication screen: the cold run
	// above has the screen on (the flow default); a second cold run
	// with -staticproof=off supplies the baseline. Avoided searches are
	// the faults the screen proved undetectable with zero PODEM work;
	// the backtrack columns record the search tail that disappears with
	// them (undetectable faults are exactly the ones that burn a full
	// backtrack budget proving a negative).
	StaticProven     int     `json:"static_proven"`
	SearchesNoScreen int64   `json:"podem_searches_noscreen"`
	SearchesScreen   int64   `json:"podem_searches_screen"`
	SearchesAvoided  int64   `json:"podem_searches_avoided"`
	BacktracksNoScr  int64   `json:"podem_backtracks_noscreen"`
	BacktracksScreen int64   `json:"podem_backtracks_screen"`
	BacktrackCut     float64 `json:"podem_backtrack_cut"`
	// CDCL escalation tier: the cold run above has the tier on (the flow
	// default); sat_escalations / sat_conflicts record its work there.
	// A cold run with the tier off supplies aborted_noescalate — the
	// unproven tail PODEM alone leaves at the default backtrack limit —
	// and its wall times. The sat-tier run cuts the PODEM budget to 1000
	// backtracks with escalation on: verdicts stay identical to the
	// default run (the solver is complete) while the hard faults' search
	// tail collapses, which is where the analyze-time reduction shows.
	SATEscalations    int     `json:"sat_escalations"`
	SATConflicts      int64   `json:"sat_conflicts"`
	AbortedNoEscalate int     `json:"aborted_noescalate"`
	AnalyzeSecNoEsc   float64 `json:"analyze_seconds_noescalate"`
	ATPGSecsNoEsc     float64 `json:"atpg_seconds_noescalate"`
	SATTierAnalyzeSec float64 `json:"sat_tier_analyze_seconds"`
	SATTierATPGSecs   float64 `json:"sat_tier_atpg_seconds"`
	SATTierEscalation int     `json:"sat_tier_escalations"`
	SATTierSpeedup    float64 `json:"sat_tier_atpg_speedup"`
	// Worker scaling: a second cold analysis pinned to one worker gives
	// the serial baseline next to the default (NumCPU) pass above; the
	// speedup is the ATPG-stage ratio, since only classification fans out.
	AnalyzeSecW1  float64 `json:"analyze_seconds_1worker"`
	ATPGSecW1     float64 `json:"atpg_seconds_1worker"`
	WorkerSpeedup float64 `json:"atpg_worker_speedup"`
	// Spatial-index columns: wall time of one DFM scan over the cold
	// layout with the grid index and with the naive full-die scans, and
	// the candidate-work reductions behind the ratio (bridge pairs and
	// density cell reads, examined vs naive).
	DFMScanGridUS    int64   `json:"dfm_scan_micros"`
	DFMScanNaiveUS   int64   `json:"dfm_scan_naive_micros"`
	DFMPairReduction float64 `json:"dfm_pair_reduction"`
	DFMCellReduction float64 `json:"dfm_cell_reduction"`
	// Provenance of the cold analysis: the flight-recorder digest (the
	// canonical ledger identity — two runs decided identically iff their
	// digests agree, so regressions show up as a changed column) and the
	// per-tier verdict breakdown behind it.
	LedgerDigest string         `json:"ledger_digest"`
	Tiers        obs.TierCounts `json:"tiers"`
	// Metrics embeds the circuit's obs-registry snapshot (counters,
	// gauges, histograms, series) covering all three analyses, so each
	// perf row is self-describing: the engine activity behind the wall
	// times travels with them.
	Metrics json.RawMessage `json:"metrics"`
}

// benchFlowScaleRow records the large synthetic tier: circuits far beyond
// the paper's 146–332 gates, ingested through the Verilog writer/reader
// round trip (the external-netlist path the CLI's -fromverilog exercises)
// and analyzed once. At this scale the spatial-index columns show the
// asymptotic win the paper-size rows cannot.
type benchFlowScaleRow struct {
	Circuit          string  `json:"circuit"`
	Gates            int     `json:"gates"`
	Faults           int     `json:"faults"`
	Tests            int     `json:"tests"`
	AnalyzeSeconds   float64 `json:"analyze_seconds"`
	ATPGSeconds      float64 `json:"atpg_seconds"`
	DFMScanGridUS    int64   `json:"dfm_scan_micros"`
	DFMScanNaiveUS   int64   `json:"dfm_scan_naive_micros"`
	DFMPairReduction float64 `json:"dfm_pair_reduction"`
	DFMCellReduction float64 `json:"dfm_cell_reduction"`
}

type benchFlowReport struct {
	// Workers and GoMaxProc are the effective values the run used (the
	// worker pool defaults to NumCPU); CPUs records the machine size so a
	// row can't silently under-report available parallelism.
	Workers   int                 `json:"workers"`
	GoMaxProc int                 `json:"gomaxprocs"`
	CPUs      int                 `json:"cpus"`
	Rows      []benchFlowRow      `json:"rows"`
	Scale     []benchFlowScaleRow `json:"scale"`
}

// dfmScanTimes runs one DFM extraction over a finished layout per spatial
// mode and returns the wall micros of each plus the grid run's stats; the
// reductions in the stats are what the wall-time ratio is made of.
func dfmScanTimes(t *testing.T, d *flow.Design, prof *dfm.LibraryProfile) (gridUS, naiveUS int64, stats dfm.ScanStats) {
	t.Helper()
	t0 := time.Now()
	_, _, _, stats = dfm.BuildFaultsScanStats(d.C, d.Lay, prof, geom.SpatialGrid)
	gridUS = time.Since(t0).Microseconds()
	t1 := time.Now()
	dfm.BuildFaultsScanStats(d.C, d.Lay, prof, geom.SpatialOff)
	naiveUS = time.Since(t1).Microseconds()
	return gridUS, naiveUS, stats
}

func TestBenchFlowJSON(t *testing.T) {
	out := os.Getenv("BENCH_FLOW_OUT")
	if out == "" {
		t.Skip("set BENCH_FLOW_OUT=<path> to emit the flow benchmark JSON")
	}
	rep := benchFlowReport{
		Workers:   par.Count(0),
		GoMaxProc: runtime.GOMAXPROCS(0),
		CPUs:      runtime.NumCPU(),
	}
	for _, name := range bench.Names {
		env := flow.NewEnv()
		env.FaultCache = fcache.New()
		env.Obs = obs.New()
		// Flight recorder over the cold analysis only: its digest is the
		// run's provenance identity, detached before the warm/incremental
		// passes so the column stays a pure function of the cold run.
		var ledgerBuf bytes.Buffer
		ledger := obs.NewLedger(&ledgerBuf)
		env.Ledger = ledger
		c := bench.MustBuild(name, env.Lib)

		t0 := time.Now()
		cold, err := env.Analyze(c, geom.Rect{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		analyze := time.Since(t0)
		env.Ledger = nil
		if err := ledger.Close(); err != nil {
			t.Fatalf("%s ledger: %v", name, err)
		}

		// Screen-on engine counters for the cold run, read before the
		// warm and incremental analyses add to the same registry.
		scrSearches := env.Obs.Registry().Counter("atpg/podem_searches").Get()
		scrBacktracks := env.Obs.Registry().Counter("atpg/podem_backtracks").Get()

		// Baseline cold run with the static screen off, in its own env
		// and registry so nothing is shared with the screen-on run.
		envOff := flow.NewEnv()
		envOff.StaticProof = implic.ModeOff
		envOff.Obs = obs.New()
		if _, err := envOff.Analyze(bench.MustBuild(name, envOff.Lib), geom.Rect{}); err != nil {
			t.Fatalf("%s screen-off baseline: %v", name, err)
		}
		offSearches := envOff.Obs.Registry().Counter("atpg/podem_searches").Get()
		offBacktracks := envOff.Obs.Registry().Counter("atpg/podem_backtracks").Get()

		// Escalation-off baseline: the aborted tail and wall times PODEM
		// alone produces at the default backtrack limit.
		envNoEsc := flow.NewEnv()
		envNoEsc.SATEscalate = false
		tNoEsc := time.Now()
		noEsc, err := envNoEsc.Analyze(bench.MustBuild(name, envNoEsc.Lib), geom.Rect{})
		if err != nil {
			t.Fatalf("%s escalation-off baseline: %v", name, err)
		}
		noEscAnalyze := time.Since(tNoEsc)

		// SAT tier: PODEM budget cut to 1000 backtracks, escalation on.
		// Complete verdicts at a fraction of the hard faults' search tail;
		// the partition must match the default cold run exactly.
		envTier := flow.NewEnv()
		envTier.ATPG.BacktrackLimit = 1000
		tTier := time.Now()
		tier, err := envTier.Analyze(bench.MustBuild(name, envTier.Lib), geom.Rect{})
		if err != nil {
			t.Fatalf("%s sat-tier run: %v", name, err)
		}
		tierAnalyze := time.Since(tTier)
		if tier.Result.Aborted != 0 {
			t.Errorf("%s sat tier: %d faults Aborted — escalation must prove everything", name, tier.Result.Aborted)
		}
		if tier.Result.Undetectable != cold.Result.Undetectable || tier.Result.Detected != cold.Result.Detected {
			t.Errorf("%s sat tier: partition %d/%d differs from default run %d/%d",
				name, tier.Result.Detected, tier.Result.Undetectable,
				cold.Result.Detected, cold.Result.Undetectable)
		}

		// Serial baseline: the same cold analysis pinned to one worker,
		// in its own env so no verdict cache is shared.
		envW1 := flow.NewEnv()
		envW1.Workers = 1
		t1w := time.Now()
		w1, err := envW1.Analyze(bench.MustBuild(name, envW1.Lib), geom.Rect{})
		if err != nil {
			t.Fatalf("%s 1-worker baseline: %v", name, err)
		}
		w1Analyze := time.Since(t1w)

		t1 := time.Now()
		warm, err := env.Analyze(c, geom.Rect{})
		if err != nil {
			t.Fatalf("%s warm: %v", name, err)
		}
		warmAnalyze := time.Since(t1)
		hit := 0.0
		if warm.Result.CacheLookups > 0 {
			hit = float64(warm.Result.CacheHits) / float64(warm.Result.CacheLookups)
		}

		t2 := time.Now()
		incr, err := env.AnalyzeIncremental(c, cold)
		if err != nil {
			t.Fatalf("%s incremental: %v", name, err)
		}
		incrAnalyze := time.Since(t2)
		// The incremental pipeline must reproduce the full pipeline's
		// fault universe exactly (ATPG metric rows can differ across
		// cache states, the universe cannot).
		if msg := dfm.DiffUniverse(warm.Faults, warm.DFMRep, incr.Faults, incr.DFMRep); msg != "" {
			t.Fatalf("%s: incremental fault universe diverges: %s", name, msg)
		}

		row := benchFlowRow{
			Circuit:        name,
			Gates:          len(cold.C.Gates),
			Faults:         cold.Faults.Len(),
			Tests:          len(cold.Result.Tests),
			AnalyzeSeconds: analyze.Seconds(),
			ATPGSeconds:    cold.ATPGTime.Seconds(),
			WarmAnalyzeSec: warmAnalyze.Seconds(),
			WarmATPGSecs:   warm.ATPGTime.Seconds(),
			CacheHitRate:   hit,
			IncrAnalyzeSec: incrAnalyze.Seconds(),
			IncrATPGSecs:   incr.ATPGTime.Seconds(),
			NetsReused:     incr.Incr.RouteReused,
			NetsRerouted:   incr.Incr.RouteRerouted,

			StaticProven:     cold.Result.StaticProven,
			SearchesNoScreen: offSearches,
			SearchesScreen:   scrSearches,
			SearchesAvoided:  offSearches - scrSearches,
			BacktracksNoScr:  offBacktracks,
			BacktracksScreen: scrBacktracks,
		}
		if offBacktracks > 0 {
			row.BacktrackCut = 1 - float64(scrBacktracks)/float64(offBacktracks)
		}
		row.SATEscalations = cold.Result.SATEscalations
		row.SATConflicts = cold.Result.SATConflicts
		row.AbortedNoEscalate = noEsc.Result.Aborted
		row.AnalyzeSecNoEsc = noEscAnalyze.Seconds()
		row.ATPGSecsNoEsc = noEsc.ATPGTime.Seconds()
		row.SATTierAnalyzeSec = tierAnalyze.Seconds()
		row.SATTierATPGSecs = tier.ATPGTime.Seconds()
		row.SATTierEscalation = tier.Result.SATEscalations
		if s := tier.ATPGTime.Seconds(); s > 0 {
			row.SATTierSpeedup = noEsc.ATPGTime.Seconds() / s
		}
		row.AnalyzeSecW1 = w1Analyze.Seconds()
		row.ATPGSecW1 = w1.ATPGTime.Seconds()
		if s := cold.ATPGTime.Seconds(); s > 0 {
			row.WorkerSpeedup = w1.ATPGTime.Seconds() / s
		}
		row.DFMScanGridUS, row.DFMScanNaiveUS, _ = dfmScanTimes(t, cold, env.Prof)
		row.DFMPairReduction = cold.DFMStats.PairReduction()
		row.DFMCellReduction = cold.DFMStats.CellReduction()
		if s := incrAnalyze.Seconds(); s > 0 {
			row.IncrSpeedup = warmAnalyze.Seconds() / s
		}
		physFull := warmAnalyze - warm.ATPGTime
		physIncr := incrAnalyze - incr.ATPGTime
		row.PhysFullSecs = physFull.Microseconds()
		row.PhysIncrSecs = physIncr.Microseconds()
		if physIncr > 0 {
			row.PhysSpeedup = float64(physFull) / float64(physIncr)
		}
		row.LedgerDigest = ledger.Digest()
		row.Tiers = cold.Result.Tiers
		snap, err := json.Marshal(env.Obs.Registry().Snapshot())
		if err != nil {
			t.Fatalf("%s metrics snapshot: %v", name, err)
		}
		row.Metrics = snap
		rep.Rows = append(rep.Rows, row)
	}
	// The synthetic scale tier, ingested through the Verilog round trip so
	// the external-netlist path gets exercised at real size.
	for _, name := range bench.ScaleNames {
		env := flow.NewEnv()
		var buf bytes.Buffer
		if err := verilog.WriteModule(&buf, bench.MustBuild(name, env.Lib)); err != nil {
			t.Fatalf("%s: write verilog: %v", name, err)
		}
		c, err := verilog.ReadModule(&buf, env.Lib)
		if err != nil {
			t.Fatalf("%s: read verilog: %v", name, err)
		}
		t0 := time.Now()
		d, err := env.Analyze(c, geom.Rect{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		analyze := time.Since(t0)
		gridUS, naiveUS, _ := dfmScanTimes(t, d, env.Prof)
		red := d.DFMStats.PairReduction()
		if name == "synth10k" && red < 10 {
			t.Errorf("synth10k pair reduction %.1fx, want >= 10x", red)
		}
		rep.Scale = append(rep.Scale, benchFlowScaleRow{
			Circuit:          name,
			Gates:            len(d.C.Gates),
			Faults:           d.Faults.Len(),
			Tests:            len(d.Result.Tests),
			AnalyzeSeconds:   analyze.Seconds(),
			ATPGSeconds:      d.ATPGTime.Seconds(),
			DFMScanGridUS:    gridUS,
			DFMScanNaiveUS:   naiveUS,
			DFMPairReduction: red,
			DFMCellReduction: d.DFMStats.CellReduction(),
		})
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d circuits)", out, len(rep.Rows))
}
