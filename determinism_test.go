// Determinism and cache-soundness gates for the parallel ATPG engine: the
// worker count must never change a single reported number, and verdicts
// reused from the fcache must agree with fresh PODEM runs.
package dfmresyn

import (
	"reflect"
	"testing"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/fault"
	"dfmresyn/internal/fcache"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/report"
	"dfmresyn/internal/resyn"
	"dfmresyn/internal/synth"
)

func statuses(d *flow.Design) []fault.Status {
	st := make([]fault.Status, d.Faults.Len())
	for i, f := range d.Faults.Faults {
		st[i] = f.Status
	}
	return st
}

// TestParallelDeterminism: analyzing a benchmark circuit with Workers=1 and
// Workers=8 must yield byte-identical fault statuses, test vectors, and
// Table I / Table II rows.
func TestParallelDeterminism(t *testing.T) {
	for _, name := range []string{"sparc_spu", "sparc_tlu"} {
		name := name
		t.Run(name, func(t *testing.T) {
			analyze := func(workers int) *flow.Design {
				env := flow.NewEnv()
				env.Workers = workers
				c := bench.MustBuild(name, env.Lib)
				d, err := env.Analyze(c, geom.Rect{})
				if err != nil {
					t.Fatal(err)
				}
				return d
			}
			ref := analyze(1)
			got := analyze(8)
			if !reflect.DeepEqual(statuses(got), statuses(ref)) {
				t.Error("fault statuses differ between Workers=1 and Workers=8")
			}
			if !reflect.DeepEqual(got.Result.Tests, ref.Result.Tests) {
				t.Errorf("test vectors differ between Workers=1 and Workers=8 (%d vs %d tests)",
					len(ref.Result.Tests), len(got.Result.Tests))
			}
			if r1, r8 := report.TableIRow(name, ref.Metrics()), report.TableIRow(name, got.Metrics()); r1 != r8 {
				t.Errorf("Table I rows differ:\n  Workers=1: %s\n  Workers=8: %s", r1, r8)
			}
			if r1, r8 := report.TableIIOrigRow(name, ref.Metrics()), report.TableIIOrigRow(name, got.Metrics()); r1 != r8 {
				t.Errorf("Table II rows differ:\n  Workers=1: %s\n  Workers=8: %s", r1, r8)
			}
		})
	}
}

// TestSATEscalationDeterminism: with the CDCL escalation tier engaged (a
// reduced backtrack limit forces real escalations on sparc_exu), any worker
// count must still render byte-identical Table II rows, identical test
// vectors, identical statuses — and the escalation tier itself must report
// identical work. The Abt column must read zero: escalation leaves no
// aborted faults.
func TestSATEscalationDeterminism(t *testing.T) {
	analyze := func(workers int) *flow.Design {
		env := flow.NewEnv() // SATEscalate defaults on
		env.Workers = workers
		env.ATPG.BacktrackLimit = 1000 // starve PODEM into escalating
		c := bench.MustBuild("sparc_exu", env.Lib)
		d, err := env.Analyze(c, geom.Rect{})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	ref := analyze(1)
	if ref.Result.SATEscalations == 0 {
		t.Fatal("no SAT escalations at limit 1000 — determinism check is vacuous")
	}
	if ref.Result.Aborted != 0 || ref.Metrics().Aborted != 0 {
		t.Errorf("escalation left %d aborted faults; the Abt column must read 0", ref.Result.Aborted)
	}
	got := analyze(8)
	if !reflect.DeepEqual(statuses(got), statuses(ref)) {
		t.Error("fault statuses differ between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(got.Result.Tests, ref.Result.Tests) {
		t.Errorf("test vectors differ between Workers=1 and Workers=8 (%d vs %d tests)",
			len(ref.Result.Tests), len(got.Result.Tests))
	}
	if got.Result.SATEscalations != ref.Result.SATEscalations ||
		got.Result.SATConflicts != ref.Result.SATConflicts ||
		got.Result.SATMemoHits != ref.Result.SATMemoHits {
		t.Errorf("SAT tier work differs across workers: %d/%d/%d vs %d/%d/%d",
			got.Result.SATEscalations, got.Result.SATConflicts, got.Result.SATMemoHits,
			ref.Result.SATEscalations, ref.Result.SATConflicts, ref.Result.SATMemoHits)
	}
	if r1, r8 := report.TableIIOrigRow("sparc_exu", ref.Metrics()), report.TableIIOrigRow("sparc_exu", got.Metrics()); r1 != r8 {
		t.Errorf("Table II rows differ:\n  Workers=1: %s\n  Workers=8: %s", r1, r8)
	}
}

// TestResynDeterminism: the full resynthesis sweep — including its shared
// verdict cache — is worker-count invariant down to the rendered Table II
// row and the iteration trace.
func TestResynDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("resynthesis sweep is slow under -short")
	}
	run := func(workers int) (string, string) {
		env := flow.NewEnv()
		env.Workers = workers
		c := bench.MustBuild("sparc_spu", env.Lib)
		orig, err := env.Analyze(c, geom.Rect{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := resyn.RunFrom(env, orig, resyn.Options{MaxQ: 1, MaxItersPhase: 2})
		if err != nil {
			t.Fatal(err)
		}
		return report.TableIIResynRow(r, 1.0), report.Fig2Trace(r)
	}
	row1, trace1 := run(1)
	row8, trace8 := run(8)
	if row1 != row8 {
		t.Errorf("resyn Table II rows differ:\n  Workers=1: %s\n  Workers=8: %s", row1, row8)
	}
	if trace1 != trace8 {
		t.Errorf("iteration traces differ:\n  Workers=1:\n%s  Workers=8:\n%s", trace1, trace8)
	}
}

// TestFlowCacheSoundnessAfterRebuild warms a verdict cache on the original
// analysis, resynthesizes a region, and checks that the cached incremental
// re-analysis agrees with an uncached one: the proven-undetectable set must
// match exactly (a cached verdict may only upgrade Aborted to Detected via
// witness replay, never flip Undetectable).
func TestFlowCacheSoundnessAfterRebuild(t *testing.T) {
	env := flow.NewEnv()
	c := bench.MustBuild("sparc_spu", env.Lib)
	orig, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild a small convex region with the same mapper, as resyn would.
	region := netlist.ExtractRegion(netlist.ConvexClosure(c, c.Gates[:3]))
	rs, err := synth.SynthesizeRegion(c, region, env.Mapper,
		func(*library.Cell) bool { return true }, synth.Delay, nil, "rb_")
	if err != nil {
		t.Fatal(err)
	}
	nc, err := rs.Rebuild(c)
	if err != nil {
		t.Fatal(err)
	}

	ref, err := env.AnalyzeIncremental(nc, orig)
	if err != nil {
		t.Fatal(err)
	}

	// Warm the cache with the original circuit's verdicts, then re-analyze
	// the rebuilt circuit through it.
	env.FaultCache = fcache.New()
	defer func() { env.FaultCache = nil }()
	if _, err := env.Analyze(c, geom.Rect{}); err != nil {
		t.Fatal(err)
	}
	got, err := env.AnalyzeIncremental(nc, orig)
	if err != nil {
		t.Fatal(err)
	}

	if got.Result.CacheHits == 0 {
		t.Error("rebuild left every cone untouched? expected cache hits > 0")
	}
	refSt, gotSt := statuses(ref), statuses(got)
	if len(refSt) != len(gotSt) {
		t.Fatalf("fault universes diverged: %d vs %d", len(refSt), len(gotSt))
	}
	for i := range refSt {
		ru := refSt[i] == fault.Undetectable
		gu := gotSt[i] == fault.Undetectable
		if ru != gu {
			t.Errorf("fault %d: cached verdict %s vs fresh %s — undetectable set changed",
				i, gotSt[i], refSt[i])
		}
	}
}
