// Clustering walks through the paper's Section II analysis (Table I):
// it builds the four Table I circuits, extracts the DFM fault universe,
// proves the undetectable set U, partitions U into subsets of structurally
// adjacent faults, and shows why the clusters are coverage holes.
package main

import (
	"fmt"
	"log"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/cluster"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/report"
)

func main() {
	env := flow.NewEnv()

	fmt.Println("TABLE I. CLUSTERED UNDETECTABLE FAULTS")
	fmt.Println(report.TableIHeader())

	for _, name := range bench.TableINames {
		c := bench.MustBuild(name, env.Lib)
		d, err := env.Analyze(c, geom.Rect{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report.TableIRow(name, d.Metrics()))
	}

	// Detail for one circuit: the adjacency structure behind the table.
	name := "aes_core"
	fmt.Printf("\n---- %s in detail\n", name)
	c := bench.MustBuild(name, env.Lib)
	d, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		log.Fatal(err)
	}
	u := d.Faults.UndetectableFaults()
	fmt.Printf("U has %d faults; partitioned into %d adjacency subsets:\n",
		len(u), len(d.Clusters.Sets))
	for i, set := range d.Clusters.Sets {
		if i == 6 {
			fmt.Println("  ...")
			break
		}
		gates := cluster.GatesOf(set)
		fmt.Printf("  S_%d: %4d faults (%d internal) over %d adjacent gates\n",
			i, len(set), cluster.InternalCount(set), len(gates))
	}
	smax := d.Clusters.Smax()
	fmt.Printf("\nS_max holds %.1f%% of all undetectable faults.\n",
		100*float64(len(smax))/float64(len(u)))
	fmt.Println("Every fault in S_max is provably untestable, so the area its")
	fmt.Println("gates occupy receives no targeted test patterns — yet a real")
	fmt.Println("systematic defect there may behave differently from the fault")
	fmt.Println("that models it, and would escape the test set entirely.")

	// Per-cell-type distribution of the hosting gates: the fault-rich
	// complex cells dominate, which is what the resynthesis exploits.
	byType := map[string]int{}
	for _, g := range d.Clusters.Gmax() {
		byType[g.Type.Name]++
	}
	fmt.Println("\nG_max gate types (the resynthesis procedure's targets):")
	for _, cell := range env.Lib.Cells {
		if n := byType[cell.Name]; n > 0 {
			fmt.Printf("  %-9s x%-4d (%d internal faults per instance)\n",
				cell.Name, n, env.Prof.InternalFaultCount(cell))
		}
	}
}
