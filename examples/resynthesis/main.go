// Resynthesis runs the paper's full two-phase procedure on one circuit and
// narrates every accepted iteration — the Fig. 2 story: phase one breaks
// the largest clusters, phase two sweeps the remaining undetectable faults,
// the backtracking procedure rescues candidates that violate constraints,
// and q rises only when the constraints block further progress.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/report"
	"dfmresyn/internal/resyn"
	"dfmresyn/internal/scan"
	"dfmresyn/internal/yield"
)

func main() {
	circuit := flag.String("circuit", "systemcaes", "benchmark circuit")
	maxQ := flag.Int("q", 5, "maximum delay/power increase in percent")
	flag.Parse()

	env := flow.NewEnv()
	c, err := bench.Build(*circuit, env.Lib)
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Now()
	orig, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		log.Fatal(err)
	}
	baseline := time.Since(t0)
	mo := orig.Metrics()
	fmt.Printf("%s original: F=%d U=%d Cov=%.2f%% Smax=%d (%.2f%% of F) delay=%.0f power=%.0f\n",
		*circuit, mo.F, mo.U, 100*mo.Cov, mo.Smax, mo.PctSmaxAll, mo.Delay, mo.Power)

	t1 := time.Now()
	r, err := resyn.RunFrom(env, orig, resyn.Options{MaxQ: *maxQ})
	if err != nil {
		log.Fatal(err)
	}
	rtime := float64(time.Since(t1)) / float64(baseline)

	fmt.Println("\niteration trace (the Fig. 2 series):")
	fmt.Print(report.Fig2Trace(r))

	mf := r.Final.Metrics()
	fmt.Printf("\nresult: U %d -> %d (%.1fx), Cov %.2f%% -> %.2f%%, Smax %d -> %d\n",
		mo.U, mf.U, safeRatio(mo.U, mf.U), 100*mo.Cov, 100*mf.Cov, mo.Smax, mf.Smax)
	fmt.Printf("constraints: delay %.2f%%, power %.2f%%, same %dx%d die\n",
		100*mf.Delay/mo.Delay, 100*mf.Power/mo.Power, r.Final.Die.W(), r.Final.Die.H())
	fmt.Printf("effort: %d Synthesize() calls, %d PDesign() calls, Rtime %.1fx one full pass\n",
		r.SynthCalls, r.PDCalls, rtime)

	// The DPPM view — the paper's motivation made quantitative: escapes
	// from undetectable-fault clusters before and after.
	m := yield.DefaultModel()
	before := m.Assess(orig)
	after := m.Assess(r.Final)
	fmt.Printf("\ntest-escape risk: %.2f -> %.2f DPPM (%.1fx lower), clustered share %.0f%% -> %.0f%%\n",
		before.DPPM, after.DPPM, m.Improvement(orig, r.Final),
		100*before.ClusteredRisk, 100*after.ClusteredRisk)

	// Tester-time view: the resynthesis barely moves |T|.
	ch := scan.Build(orig.P)
	fmt.Printf("tester time: %d -> %d cycles (%.2fx) over a %d-flop chain\n",
		ch.Time(len(orig.Result.Tests)).Cycles,
		ch.Time(len(r.Final.Result.Tests)).Cycles,
		ch.Relative(len(r.Final.Result.Tests), len(orig.Result.Tests)),
		ch.Length())

	fmt.Println("\nTable II rows:")
	fmt.Println(report.TableIIHeader())
	fmt.Println(report.TableIIOrigRow(*circuit, mo))
	fmt.Println(report.TableIIResynRow(r, rtime))
}

func safeRatio(a, b int) float64 {
	if b == 0 {
		return float64(a)
	}
	return float64(a) / float64(b)
}
