// Restricted_library reproduces the closing experiment of the paper's
// Section IV: instead of the targeted resynthesis procedure, simply remove
// the seven cells with the largest numbers of internal faults from the
// library and synthesize the whole design with what remains. The paper
// measured critical-path delays of 130% and 137% (and 109% power) for
// sparc_ifu and sparc_fpu — naive cell avoidance does not maintain the
// design constraints, while the targeted procedure does.
package main

import (
	"fmt"
	"log"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/library"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/synth"
)

func main() {
	env := flow.NewEnv()

	ordered := env.Lib.SortedBy(func(c *library.Cell) float64 {
		return float64(env.Prof.InternalFaultCount(c))
	})
	dropped := map[*library.Cell]bool{}
	fmt.Println("dropping the 7 cells with the most internal faults:")
	for _, c := range ordered[:7] {
		dropped[c] = true
		fmt.Printf("  %-9s %d internal faults per instance\n",
			c.Name, env.Prof.InternalFaultCount(c))
	}
	allowed := func(c *library.Cell) bool { return !dropped[c] }

	for _, name := range []string{"sparc_ifu", "sparc_fpu"} {
		c := bench.MustBuild(name, env.Lib)

		// Baseline: whole-circuit synthesis with the FULL library (the
		// paper compares two synthesized designs, differing only in the
		// allowed cells), placed at 70% utilization.
		region := netlist.ExtractRegion(c.Gates)
		rsFull, err := synth.SynthesizeRegion(c, region, env.Mapper,
			func(*library.Cell) bool { return true }, synth.Delay, nil, "fl_")
		if err != nil {
			log.Fatal(err)
		}
		fullC, err := rsFull.Rebuild(c)
		if err != nil {
			log.Fatal(err)
		}
		orig, err := env.Analyze(fullC, geom.Rect{})
		if err != nil {
			log.Fatal(err)
		}

		// Restricted: same synthesis without the 7 fault-rich cells,
		// into the same floorplan.
		rsRestr, err := synth.SynthesizeRegion(c, region, env.Mapper, allowed, synth.Delay, nil, "rl_")
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		nc, err := rsRestr.Rebuild(c)
		if err != nil {
			log.Fatal(err)
		}
		restricted, err := env.Analyze(nc, orig.Die)
		if err != nil {
			fmt.Printf("%-10s restricted: does not fit the original floorplan (%v)\n", name, err)
			continue
		}

		fmt.Printf("\n%s (paper: restricted library hits 130-137%% delay, 109%% power)\n", name)
		fmt.Printf("  full library:       %5d gates, delay %7.1f, power %7.1f, U=%d\n",
			len(fullC.Gates), orig.Timing.CriticalDelay, orig.Power.Total,
			orig.Faults.Count().Undetectable)
		fmt.Printf("  restricted library: %5d gates, delay %6.1f%%, power %6.1f%%, U=%d\n",
			len(nc.Gates),
			100*restricted.Timing.CriticalDelay/orig.Timing.CriticalDelay,
			100*restricted.Power.Total/orig.Power.Total,
			restricted.Faults.Count().Undetectable)
		fmt.Println("  (the targeted procedure — Table II — achieves its U reduction")
		fmt.Println("   within a few percent of the original delay and power instead)")
	}
}
