// Quickstart: build a small circuit, find its DFM fault universe, generate
// tests, prove the undetectable set, cluster it, and remove the cluster by
// resynthesis — the whole library surface in about eighty lines.
package main

import (
	"fmt"
	"log"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/resyn"
)

func main() {
	// The environment bundles the 21-cell standard library, its DFM
	// profile (cell-internal defects derived by switch-level
	// simulation), the technology mapper, and the ATPG configuration.
	env := flow.NewEnv()

	// tv80 is the smallest benchmark: a Z80-style ALU slice.
	c := bench.MustBuild("tv80", env.Lib)
	st := c.Stats()
	fmt.Printf("circuit %s: %d gates, %d nets, %d PIs, %d POs\n",
		c.Name, st.Gates, st.Nets, st.PIs, st.POs)

	// Analyze: place at 70%% utilization, route, check the 59 DFM
	// guidelines, translate violations into faults, run ATPG.
	d, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		log.Fatal(err)
	}
	m := d.Metrics()
	fmt.Printf("faults F=%d (internal %d, external %d)\n", m.F, m.FIn, m.FEx)
	fmt.Printf("tests T=%d, coverage %.2f%%, undetectable U=%d\n", m.T, 100*m.Cov, m.U)
	fmt.Printf("largest cluster S_max=%d faults over G_max=%d gates\n", m.Smax, m.Gmax)

	// A few members of U, to see what an undetectable DFM fault is.
	for i, f := range d.Faults.UndetectableFaults() {
		if i == 5 {
			fmt.Println("   ...")
			break
		}
		fmt.Printf("   %v\n", f)
	}

	// The paper's procedure: two-phase resynthesis with a q sweep.
	r, err := resyn.RunFrom(env, d, resyn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	mf := r.Final.Metrics()
	fmt.Printf("\nafter resynthesis (q up to %d%%):\n", r.BestQ)
	fmt.Printf("U %d -> %d, coverage %.2f%% -> %.2f%%, S_max %d -> %d\n",
		m.U, mf.U, 100*m.Cov, 100*mf.Cov, m.Smax, mf.Smax)
	fmt.Printf("delay %.1f%%, power %.1f%% of the original; same die %dx%d\n",
		100*mf.Delay/m.Delay, 100*mf.Power/m.Power, r.Final.Die.W(), r.Final.Die.H())
}
