// Command obscheck validates observability exports — the files written by
// dfmresyn's -tracefile and -metricsfile flags. It is the verifier behind
// `make obs-smoke`: a trace file must be Chrome trace_event JSON with at
// least one event, and a metrics file must be a registry snapshot with all
// four instrument sections present.
//
// Usage:
//
//	obscheck -trace run.trace.json -metrics run.metrics.json
//
// Exit codes: 0 all named files valid, 1 a file failed validation, 2 usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dfmresyn/internal/obs"
)

var (
	traceFile   = flag.String("trace", "", "Chrome trace_event JSON file to validate")
	metricsFile = flag.String("metrics", "", "metrics snapshot JSON file to validate")
)

func main() {
	flag.Parse()
	if *traceFile == "" && *metricsFile == "" {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -trace and/or -metrics")
		os.Exit(2)
	}
	ok := true
	if *traceFile != "" {
		ok = report(*traceFile, checkTrace(*traceFile)) && ok
	}
	if *metricsFile != "" {
		ok = report(*metricsFile, checkMetrics(*metricsFile)) && ok
	}
	if !ok {
		os.Exit(1)
	}
}

func report(path string, err error) bool {
	if err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", path, err)
		return false
	}
	fmt.Printf("obscheck: %s: ok\n", path)
	return true
}

// checkTrace requires valid trace_event JSON with a non-empty traceEvents
// array whose events all carry a name and the "X" (complete) phase the
// exporter emits.
func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("not trace_event JSON: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("traceEvents is empty — the traced run recorded no spans")
	}
	for i, ev := range tf.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("event %d has no name", i)
		}
		if ev.Ph != "X" {
			return fmt.Errorf("event %d (%s) has phase %q, want \"X\"", i, ev.Name, ev.Ph)
		}
		if ev.Dur < 0 || ev.Ts < 0 {
			return fmt.Errorf("event %d (%s) has negative ts/dur", i, ev.Name)
		}
	}
	return nil
}

// checkMetrics requires a snapshot whose four sections all unmarshal and are
// present (an empty registry exports empty maps, not nulls — obscheck pins
// that too), and whose histograms are internally consistent: one bucket more
// than bounds, bucket counts summing to the observation count, and monotone
// quantile estimates p50 <= p95 <= p99 whenever anything was observed.
func checkMetrics(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap struct {
		Counters   map[string]int64                 `json:"counters"`
		Gauges     map[string]float64               `json:"gauges"`
		Histograms map[string]obs.HistogramSnapshot `json:"histograms"`
		Series     map[string][]float64             `json:"series"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("not a metrics snapshot: %w", err)
	}
	if snap.Counters == nil || snap.Gauges == nil || snap.Histograms == nil || snap.Series == nil {
		return fmt.Errorf("snapshot is missing a section (counters/gauges/histograms/series)")
	}
	for name, h := range snap.Histograms {
		if len(h.Counts) != len(h.Bounds)+1 {
			return fmt.Errorf("histogram %s: %d buckets for %d bounds, want bounds+1",
				name, len(h.Counts), len(h.Bounds))
		}
		var sum int64
		for _, c := range h.Counts {
			if c < 0 {
				return fmt.Errorf("histogram %s: negative bucket count %d", name, c)
			}
			sum += c
		}
		if sum != h.Count {
			return fmt.Errorf("histogram %s: buckets sum to %d but count is %d", name, sum, h.Count)
		}
		if h.Count > 0 && !(h.P50 <= h.P95 && h.P95 <= h.P99) {
			return fmt.Errorf("histogram %s: quantiles not monotone: p50=%g p95=%g p99=%g",
				name, h.P50, h.P95, h.P99)
		}
	}
	return nil
}
