// Command clusterstats reproduces the Table I analysis for any benchmark
// circuit: the partition of undetectable DFM faults into subsets of
// structurally adjacent faults, with the cluster size distribution.
//
// Usage:
//
//	clusterstats -circuit sparc_exu
//	clusterstats -circuit des_perf -top 10
package main

import (
	"flag"
	"fmt"
	"os"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/cluster"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/report"
)

func main() {
	var (
		circuit = flag.String("circuit", "", "benchmark circuit name")
		top     = flag.Int("top", 5, "how many largest clusters to detail")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *circuit == "" {
		fmt.Fprintln(os.Stderr, "pass -circuit <name>")
		os.Exit(2)
	}

	env := flow.NewEnv()
	env.Seed = *seed
	env.ATPG.Seed = *seed
	c, err := bench.Build(*circuit, env.Lib)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	d, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println(report.TableIHeader())
	fmt.Println(report.TableIRow(*circuit, d.Metrics()))

	fmt.Printf("\ncluster size distribution (%d clusters):\n", len(d.Clusters.Sets))
	for i, set := range d.Clusters.Sets {
		if i >= *top {
			rest := 0
			for _, s := range d.Clusters.Sets[i:] {
				rest += len(s)
			}
			fmt.Printf("  ... %d more clusters totalling %d faults\n", len(d.Clusters.Sets)-i, rest)
			break
		}
		gates := cluster.GatesOf(set)
		fmt.Printf("  S_%d: %4d faults (%d internal) over %d gates\n",
			i, len(set), cluster.InternalCount(set), len(gates))
	}
}
