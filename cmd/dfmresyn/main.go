// Command dfmresyn runs the paper's full flow: it builds a benchmark
// circuit, synthesizes its layout, extracts the DFM fault universe, runs
// ATPG, and applies the two-phase resynthesis procedure, printing Table I /
// Table II rows and the Fig. 2 iteration trace.
//
// Usage:
//
//	dfmresyn -table1                 # Table I over its four circuits
//	dfmresyn -table2 -circuit tv80   # Table II rows for one circuit
//	dfmresyn -table2 -all            # full Table II (slow: full q sweep)
//	dfmresyn -trace -circuit aes_core
//	dfmresyn -table2 -all -workers 8 -cpuprofile cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/obs"
	"dfmresyn/internal/par"
	"dfmresyn/internal/report"
	"dfmresyn/internal/resyn"
)

var (
	circuit   = flag.String("circuit", "", "benchmark circuit name (see -list)")
	all       = flag.Bool("all", false, "run every Table II circuit")
	table1    = flag.Bool("table1", false, "print Table I (clustering before resynthesis)")
	table2    = flag.Bool("table2", false, "print Table II (resynthesis results)")
	trace     = flag.Bool("trace", false, "print the Fig. 2 iteration trace (the paper's algorithm-level series; for span tracing see -tracefile)")
	list      = flag.Bool("list", false, "list circuit names")
	maxQ      = flag.Int("q", 5, "maximum acceptable delay/power increase in percent")
	seed      = flag.Int64("seed", 1, "random seed for the whole flow")
	workers   = flag.Int("workers", 0, "fault-classification worker pool size (0 = NumCPU); any value gives identical tables")
	diffCheck = flag.Bool("diffcheck", false, "verify every incremental physical re-analysis against a from-scratch recompute (slow; debugging aid)")
	cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceFile = flag.String("tracefile", "", "write a Chrome trace_event JSON of every pipeline span to this file (open in chrome://tracing or Perfetto)")
	metrics   = flag.String("metricsfile", "", "write the metrics-registry snapshot (counters, gauges, histograms, series) as JSON to this file")
	httpAddr  = flag.String("httpaddr", "", "serve live introspection on this address (/metrics, /spans, /debug/pprof); empty = off")
)

func main() {
	flag.Parse()

	if *list {
		for _, n := range bench.Names {
			fmt.Println(n)
		}
		return
	}
	// Usage errors exit before any profiling starts.
	if !*table1 && !*table2 && !*trace {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -table1, -table2 or -trace (see -help)")
		os.Exit(2)
	}
	if (*table2 || *trace) && !*all && *circuit == "" {
		fmt.Fprintln(os.Stderr, "pass -circuit <name> or -all")
		os.Exit(2)
	}

	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run holds all the real work so the profile writers, installed as defers,
// fire on every exit path — including error returns, so a CPU profile is
// always stopped and flushed, and a heap-profile failure surfaces in the
// exit code instead of only on stderr.
func run() (err error) {
	if *cpuProf != "" {
		f, cerr := os.Create(*cpuProf)
		if cerr != nil {
			return fmt.Errorf("cpuprofile: %w", cerr)
		}
		defer f.Close()
		if cerr := pprof.StartCPUProfile(f); cerr != nil {
			return fmt.Errorf("cpuprofile: %w", cerr)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			if werr := writeHeapProfile(*memProf); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	// Observability is opt-in: any of the three flags creates the tracer.
	// Exports run as defers so a failing run still dumps what it traced;
	// everything obs-related prints to stderr so table output stays
	// byte-identical with tracing on or off.
	var tracer *obs.Tracer
	if *traceFile != "" || *metrics != "" || *httpAddr != "" {
		tracer = obs.New()
		if *httpAddr != "" {
			_, addr, serr := obs.ServeDebug(tracer, *httpAddr)
			if serr != nil {
				return fmt.Errorf("httpaddr: %w", serr)
			}
			fmt.Fprintf(os.Stderr, "obs: debug server on http://%s (/metrics /spans /debug/pprof)\n", addr)
		}
		root := obs.Start(tracer, "dfmresyn/run")
		defer func() {
			root.End()
			if werr := writeObsExports(tracer); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	env := flow.NewEnv()
	env.Seed = *seed
	env.ATPG.Seed = *seed
	env.Workers = *workers
	env.DiffCheck = *diffCheck
	env.Obs = tracer

	if *table1 {
		fmt.Println("TABLE I. CLUSTERED UNDETECTABLE FAULTS")
		fmt.Println(report.TableIHeader())
		for _, name := range bench.TableINames {
			c := bench.MustBuild(name, env.Lib)
			d, err := env.Analyze(c, geom.Rect{})
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println(report.TableIRow(name, d.Metrics()))
		}
		if !*table2 && !*trace {
			return nil
		}
	}

	names := []string{*circuit}
	if *all {
		names = bench.Names
	}

	if *table2 {
		fmt.Println("TABLE II. EXPERIMENTAL RESULTS")
		fmt.Println(report.TableIIHeader())
	}
	avg := &report.Averages{}
	for _, name := range names {
		spCircuit := obs.Start(tracer, "dfmresyn/circuit", obs.String("circuit", name))
		c := bench.MustBuild(name, env.Lib)

		// Rtime baseline: one synthesis + physical design + test
		// generation pass is the original analysis itself.
		t0 := time.Now()
		orig, err := env.Analyze(c, geom.Rect{})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		baseline := time.Since(t0)

		t1 := time.Now()
		r, err := resyn.RunFrom(env, orig, resyn.Options{MaxQ: *maxQ})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rtime := float64(time.Since(t1)) / float64(baseline)
		spCircuit.Annotate(obs.Float("rtime", rtime))
		spCircuit.End()
		if *table2 {
			fmt.Println(report.TableIIOrigRow(name, r.Orig.Metrics()))
			fmt.Println(report.TableIIResynRow(r, rtime))
			fmt.Println(report.PerfRow(name, par.Count(*workers),
				r.ATPGTime.Seconds(), r.Cache.HitRate(),
				int(r.Cache.Lookups), r.Cache.Entries))
			fmt.Println(report.IncrRow(name, r.Incr.Analyses,
				r.Incr.NetsReused, r.Incr.NetsRerouted))
			avg.Add(r, rtime)
		}
		if *trace {
			fmt.Printf("---- %s iteration trace (Fig. 2 series)\n", name)
			fmt.Print(report.Fig2Trace(r))
		}
	}
	if *table2 && *all {
		fmt.Println(avg.Row())
	}
	return nil
}

// writeObsExports dumps the tracer's Chrome trace and metrics snapshot to
// the files requested by -tracefile / -metricsfile.
func writeObsExports(tracer *obs.Tracer) error {
	write := func(path string, fn func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(*traceFile, func(f *os.File) error { return tracer.WriteChromeTrace(f) }); err != nil {
		return fmt.Errorf("tracefile: %w", err)
	}
	if err := write(*metrics, func(f *os.File) error { return tracer.WriteMetricsJSON(f) }); err != nil {
		return fmt.Errorf("metricsfile: %w", err)
	}
	return nil
}

// writeHeapProfile snapshots the final live heap into path. The explicit
// GC matters for accuracy: heap profiles are recorded at the previous
// collection, so without one the profile misses everything allocated since
// and over-reports freed memory.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC() // materialize the final live set
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
