// Command dfmresyn runs the paper's full flow: it builds a benchmark
// circuit, synthesizes its layout, extracts the DFM fault universe, runs
// ATPG, and applies the two-phase resynthesis procedure, printing Table I /
// Table II rows and the Fig. 2 iteration trace.
//
// Usage:
//
//	dfmresyn -table1                 # Table I over its four circuits
//	dfmresyn -table2 -circuit tv80   # Table II rows for one circuit
//	dfmresyn -table2 -all            # full Table II (slow: full q sweep)
//	dfmresyn -trace -circuit aes_core
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/report"
	"dfmresyn/internal/resyn"
)

func main() {
	var (
		circuit = flag.String("circuit", "", "benchmark circuit name (see -list)")
		all     = flag.Bool("all", false, "run every Table II circuit")
		table1  = flag.Bool("table1", false, "print Table I (clustering before resynthesis)")
		table2  = flag.Bool("table2", false, "print Table II (resynthesis results)")
		trace   = flag.Bool("trace", false, "print the Fig. 2 iteration trace")
		list    = flag.Bool("list", false, "list circuit names")
		maxQ    = flag.Int("q", 5, "maximum acceptable delay/power increase in percent")
		seed    = flag.Int64("seed", 1, "random seed for the whole flow")
	)
	flag.Parse()

	if *list {
		for _, n := range bench.Names {
			fmt.Println(n)
		}
		return
	}

	env := flow.NewEnv()
	env.Seed = *seed
	env.ATPG.Seed = *seed

	if *table1 {
		fmt.Println("TABLE I. CLUSTERED UNDETECTABLE FAULTS")
		fmt.Println(report.TableIHeader())
		for _, name := range bench.TableINames {
			d := analyze(env, name)
			fmt.Println(report.TableIRow(name, d.Metrics()))
		}
		return
	}

	if !*table2 && !*trace {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -table1, -table2 or -trace (see -help)")
		os.Exit(2)
	}

	names := []string{*circuit}
	if *all {
		names = bench.Names
	} else if *circuit == "" {
		fmt.Fprintln(os.Stderr, "pass -circuit <name> or -all")
		os.Exit(2)
	}

	if *table2 {
		fmt.Println("TABLE II. EXPERIMENTAL RESULTS")
		fmt.Println(report.TableIIHeader())
	}
	avg := &report.Averages{}
	for _, name := range names {
		c := bench.MustBuild(name, env.Lib)

		// Rtime baseline: one synthesis + physical design + test
		// generation pass is the original analysis itself.
		t0 := time.Now()
		orig, err := env.Analyze(c, geom.Rect{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		baseline := time.Since(t0)

		t1 := time.Now()
		r, err := resyn.RunFrom(env, orig, resyn.Options{MaxQ: *maxQ})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		rtime := float64(time.Since(t1)) / float64(baseline)
		if *table2 {
			fmt.Println(report.TableIIOrigRow(name, r.Orig.Metrics()))
			fmt.Println(report.TableIIResynRow(r, rtime))
			avg.Add(r, rtime)
		}
		if *trace {
			fmt.Printf("---- %s iteration trace (Fig. 2 series)\n", name)
			fmt.Print(report.Fig2Trace(r))
		}
	}
	if *table2 && *all {
		fmt.Println(avg.Row())
	}
}

func analyze(env *flow.Env, name string) *flow.Design {
	c := bench.MustBuild(name, env.Lib)
	d, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
	return d
}
