// Command dfmresyn runs the paper's full flow: it builds a benchmark
// circuit, synthesizes its layout, extracts the DFM fault universe, runs
// ATPG, and applies the two-phase resynthesis procedure, printing Table I /
// Table II rows and the Fig. 2 iteration trace.
//
// Usage:
//
//	dfmresyn -table1                 # Table I over its four circuits
//	dfmresyn -table2 -circuit tv80   # Table II rows for one circuit
//	dfmresyn -table2 -all            # full Table II (slow: full q sweep)
//	dfmresyn -trace -circuit aes_core
//	dfmresyn -table2 -all -workers 8 -cpuprofile cpu.out
//	dfmresyn -table2 -circuit tv80 -journal run.ckpt   # resumable sweep
//	dfmresyn -table2 -circuit tv80 -resume run.ckpt    # continue it
//
// Exit codes (also asserted by the CLI test):
//
//	0  success
//	1  usage error, I/O failure, or any error not classified below
//	2  static-analysis findings under -lint strict
//	3  design-constraint violation (the circuit does not fit its die)
//	4  run interrupted — by SIGINT/SIGTERM, a -deadline expiry, or a
//	   simulated -stopafter kill; with -journal set, the checkpoint holds
//	   every committed iteration and -resume continues it
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/chaos"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/implic"
	"dfmresyn/internal/lint"
	"dfmresyn/internal/netlist"
	"dfmresyn/internal/obs"
	"dfmresyn/internal/par"
	"dfmresyn/internal/place"
	"dfmresyn/internal/report"
	"dfmresyn/internal/resilience"
	"dfmresyn/internal/resyn"
	"dfmresyn/internal/verilog"
)

var (
	circuit    = flag.String("circuit", "", "benchmark circuit name (see -list)")
	all        = flag.Bool("all", false, "run every Table II circuit")
	table1     = flag.Bool("table1", false, "print Table I (clustering before resynthesis)")
	table2     = flag.Bool("table2", false, "print Table II (resynthesis results)")
	trace      = flag.Bool("trace", false, "print the Fig. 2 iteration trace (the paper's algorithm-level series; for span tracing see -tracefile)")
	list       = flag.Bool("list", false, "list circuit names")
	maxQ       = flag.Int("q", 5, "maximum acceptable delay/power increase in percent")
	seed       = flag.Int64("seed", 1, "random seed for the whole flow")
	workers    = flag.Int("workers", 0, "fault-classification worker pool size (0 = NumCPU); any value gives identical tables")
	diffCheck  = flag.Bool("diffcheck", false, "verify every incremental physical re-analysis against a from-scratch recompute (slow; debugging aid)")
	lintMode   = flag.String("lint", "off", "static-analysis enforcement: off, warn, or strict (strict exits 2 on findings)")
	staticPf   = flag.String("staticproof", "screen", "static implication screen: off, screen (prove undetectable faults with zero searches; tables byte-identical to off), or seed (also assert learned implications inside PODEM)")
	satEsc     = flag.String("satescalate", "on", "CDCL SAT escalation for searches that exhaust the backtrack limit: on (aborted faults are re-solved to a definitive verdict, Abt column reads 0) or off (hard faults stay Aborted)")
	dieSpec    = flag.String("die", "", "place into a fixed WxH die instead of the auto floorplan (e.g. 64x64); a circuit that does not fit exits 3")
	spatial    = flag.String("spatial", "grid", "spatial index for the physical hot paths: grid (bucket index) or off (naive full scans; differential baseline). Tables are byte-identical either way")
	fromVlog   = flag.String("fromverilog", "", "analyze a structural Verilog netlist file (as written by the flow's own writer) instead of a built-in circuit")
	journal    = flag.String("journal", "", "checkpoint the sweep to this journal after every accepted iteration (resume with -resume)")
	resumePath = flag.String("resume", "", "resume an interrupted sweep from this checkpoint journal (requires the same -circuit, -seed and sweep options)")
	deadline   = flag.Duration("deadline", 0, "per-stage deadline for fault classification (e.g. 30s); expiry interrupts the run (exit 4)")
	stopAfter  = flag.Int("stopafter", 0, "stop the sweep after N accepted iterations as a simulated kill (exit 4); with -journal the run is resumable")
	chaosRate  = flag.Float64("chaospanic", 0, "inject worker panics into this fraction of PODEM searches (chaos harness; tables must not change)")
	cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceFile  = flag.String("tracefile", "", "write a Chrome trace_event JSON of every pipeline span to this file (open in chrome://tracing or Perfetto)")
	metrics    = flag.String("metricsfile", "", "write the metrics-registry snapshot (counters, gauges, histograms, series) as JSON to this file")
	httpAddr   = flag.String("httpaddr", "", "serve live introspection on this address (/metrics, /spans, /ledger, /healthz, /version, /debug/pprof); empty = off")
	ledgerPath = flag.String("ledger", "", "write the run flight recorder — one JSONL provenance record per fault verdict plus stage/iteration summaries — to this file (diff two with obsdiff)")
)

// Exit codes. Keep in sync with the package comment and README.
const (
	exitOK          = 0
	exitUsage       = 1
	exitLint        = 2
	exitConstraint  = 3
	exitInterrupted = 4
)

func usageError(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(exitUsage)
}

func main() {
	flag.Parse()

	if *list {
		for _, n := range bench.Names {
			fmt.Println(n)
		}
		return
	}
	// Usage errors exit before any profiling starts.
	if !*table1 && !*table2 && !*trace {
		usageError("nothing to do: pass -table1, -table2 or -trace (see -help)")
	}
	if (*table2 || *trace) && !*all && *circuit == "" && *fromVlog == "" {
		usageError("pass -circuit <name>, -fromverilog <file> or -all")
	}
	if *fromVlog != "" && (*all || *table1 || *circuit != "") {
		usageError("-fromverilog analyzes one external netlist: drop -all, -table1 and -circuit")
	}
	if *resumePath != "" && (*all || *circuit == "") {
		usageError("-resume continues one sweep: pass the journal's -circuit, not -all")
	}

	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		switch {
		case errors.Is(err, resilience.ErrInterrupted):
			// Only advertise -resume when a checkpoint was actually written:
			// an interrupt before the sweep's first commit leaves no journal.
			if *journal != "" {
				if _, statErr := os.Stat(*journal); statErr == nil {
					fmt.Fprintf(os.Stderr, "interrupted: committed iterations are journaled in %s; continue with -resume %s\n", *journal, *journal)
				}
			}
			os.Exit(exitInterrupted)
		case errors.Is(err, lint.ErrFindings):
			os.Exit(exitLint)
		case errors.Is(err, place.ErrConstraint):
			os.Exit(exitConstraint)
		default:
			os.Exit(exitUsage)
		}
	}
}

// parseLintMode maps the -lint flag to a flow enforcement mode.
func parseLintMode(s string) (lint.Mode, error) {
	switch s {
	case "off":
		return lint.ModeOff, nil
	case "warn":
		return lint.ModeWarn, nil
	case "strict":
		return lint.ModeStrict, nil
	}
	return lint.ModeOff, fmt.Errorf("bad -lint mode %q (off, warn, strict)", s)
}

// parseDie maps the -die WxH flag to a fixed floorplan rectangle.
func parseDie(s string) (geom.Rect, error) {
	var w, h int
	if n, err := fmt.Sscanf(s, "%dx%d", &w, &h); n != 2 || err != nil || w <= 0 || h <= 0 {
		return geom.Rect{}, fmt.Errorf("bad -die %q (want WxH, e.g. 64x64)", s)
	}
	return geom.Rect{X0: 0, Y0: 0, X1: w, Y1: h}, nil
}

// run holds all the real work so the profile writers, installed as defers,
// fire on every exit path — including error returns and signal-triggered
// cancellations, so a CPU profile is always stopped, exports are always
// flushed, and the debug server always shuts down gracefully.
func run() (err error) {
	lmode, err := parseLintMode(*lintMode)
	if err != nil {
		return err
	}
	smode, err := implic.ParseMode(*staticPf)
	if err != nil {
		return fmt.Errorf("bad -staticproof mode %q (off, screen, seed)", *staticPf)
	}
	spmode, err := geom.ParseSpatialMode(*spatial)
	if err != nil {
		return fmt.Errorf("bad -spatial mode %q (grid, off)", *spatial)
	}
	var satOn bool
	switch *satEsc {
	case "on":
		satOn = true
	case "off":
		satOn = false
	default:
		return fmt.Errorf("bad -satescalate mode %q (off, on)", *satEsc)
	}
	var die geom.Rect
	if *dieSpec != "" {
		if die, err = parseDie(*dieSpec); err != nil {
			return err
		}
	}

	// SIGINT/SIGTERM cancel the run's context; every stage aborts at its
	// next deterministic boundary, the journal already holds the last
	// accepted iteration, and the deferred exporters below still run. A
	// second signal kills the process the hard way (NotifyContext resets
	// the handler once the context is done).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *cpuProf != "" {
		f, cerr := os.Create(*cpuProf)
		if cerr != nil {
			return fmt.Errorf("cpuprofile: %w", cerr)
		}
		defer f.Close()
		if cerr := pprof.StartCPUProfile(f); cerr != nil {
			return fmt.Errorf("cpuprofile: %w", cerr)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			if werr := writeHeapProfile(*memProf); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	// Observability is opt-in: any of the three flags creates the tracer.
	// Exports run as defers so a failing or interrupted run still dumps
	// what it traced; everything obs-related prints to stderr so table
	// output stays byte-identical with tracing on or off.
	var tracer *obs.Tracer
	if *traceFile != "" || *metrics != "" || *httpAddr != "" {
		tracer = obs.New()
		if *httpAddr != "" {
			srv, addr, serr := obs.ServeDebug(tracer, *httpAddr)
			if serr != nil {
				return fmt.Errorf("httpaddr: %w", serr)
			}
			fmt.Fprintf(os.Stderr, "obs: debug server on http://%s (/metrics /spans /debug/pprof)\n", addr)
			defer shutdownDebugServer(srv)
		}
		root := obs.Start(tracer, "dfmresyn/run")
		defer func() {
			root.End()
			if werr := writeObsExports(tracer); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	// The run flight recorder is independent of the tracer: -ledger alone
	// records provenance; with -httpaddr too, /ledger streams it live. The
	// digest goes to stderr so stdout tables stay identical with or without
	// the ledger.
	var ledger *obs.Ledger
	if *ledgerPath != "" {
		ledger, err = obs.CreateLedger(*ledgerPath)
		if err != nil {
			return fmt.Errorf("ledger: %w", err)
		}
		tracer.AttachLedger(ledger)
		defer func() {
			if cerr := ledger.Close(); cerr != nil && err == nil {
				err = cerr
			}
			fmt.Fprintf(os.Stderr, "ledger: %d events, digest %s -> %s\n",
				ledger.Events(), ledger.Digest(), *ledgerPath)
		}()
	}

	env := flow.NewEnv()
	env.Seed = *seed
	env.ATPG.Seed = *seed
	env.Workers = *workers
	env.DiffCheck = *diffCheck
	env.Obs = tracer
	env.Ctx = ctx
	env.StageTimeout = *deadline
	env.Lint = lmode
	env.StaticProof = smode
	env.SATEscalate = satOn
	env.Spatial = spmode
	env.Ledger = ledger
	if *chaosRate > 0 {
		env.ATPG.InjectPanic = chaos.Panics(*seed, *chaosRate)
	}

	if *table1 {
		fmt.Println("TABLE I. CLUSTERED UNDETECTABLE FAULTS")
		fmt.Println(report.TableIHeader())
		for _, name := range bench.TableINames {
			c := bench.MustBuild(name, env.Lib)
			d, err := env.Analyze(c, die)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println(report.TableIRow(name, d.Metrics()))
		}
		if !*table2 && !*trace {
			return nil
		}
	}

	// An external Verilog netlist takes the place of a built-in circuit:
	// the flow beyond this point is identical.
	var extC *netlist.Circuit
	if *fromVlog != "" {
		f, oerr := os.Open(*fromVlog)
		if oerr != nil {
			return fmt.Errorf("fromverilog: %w", oerr)
		}
		extC, err = verilog.ReadModule(f, env.Lib)
		f.Close()
		if err != nil {
			return fmt.Errorf("fromverilog %s: %w", *fromVlog, err)
		}
	}

	names := []string{*circuit}
	if *all {
		names = bench.Names
	}
	if extC != nil {
		names = []string{extC.Name}
	}

	if *table2 {
		fmt.Println("TABLE II. EXPERIMENTAL RESULTS")
		fmt.Println(report.TableIIHeader())
	}
	avg := &report.Averages{}
	for _, name := range names {
		spCircuit := obs.Start(tracer, "dfmresyn/circuit", obs.String("circuit", name))
		c := extC
		if c == nil {
			c = bench.MustBuild(name, env.Lib)
		}

		// Rtime baseline: one synthesis + physical design + test
		// generation pass is the original analysis itself.
		t0 := time.Now()
		orig, err := env.Analyze(c, die)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		baseline := time.Since(t0)

		opt := resyn.Options{MaxQ: *maxQ, Journal: *journal, StopAfterCommits: *stopAfter}
		t1 := time.Now()
		var r *resyn.Result
		if *resumePath != "" {
			r, err = resyn.Resume(env, orig, *resumePath, opt)
		} else {
			r, err = resyn.RunFrom(env, orig, opt)
		}
		if r != nil {
			// The resilience row is diagnostic (stderr): what the run
			// survived must never change what it prints (stdout).
			fmt.Fprintln(os.Stderr, report.ResilienceRow(name,
				orig.Result.Recovered+r.Recovered,
				len(orig.Result.Quarantined)+r.Quarantined,
				r.Cache.Corrupt, r.ReplayedCommits))
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rtime := float64(time.Since(t1)) / float64(baseline)
		spCircuit.Annotate(obs.Float("rtime", rtime))
		spCircuit.End()
		if *table2 {
			fmt.Println(report.TableIIOrigRow(name, r.Orig.Metrics()))
			fmt.Println(report.TableIIResynRow(r, rtime))
			staticProven := -1 // render "static off"
			if smode != implic.ModeOff {
				staticProven = orig.Result.StaticProven + r.StaticProven
			}
			satEscalations, satConflicts := -1, int64(0) // render "sat off"
			if satOn {
				satEscalations = orig.Result.SATEscalations + r.SATEscalations
				satConflicts = orig.Result.SATConflicts + r.SATConflicts
			}
			fmt.Println(report.PerfRow(name, par.Count(*workers),
				r.ATPGTime.Seconds(), r.Cache.HitRate(),
				int(r.Cache.Lookups), r.Cache.Entries, staticProven,
				r.Final.Metrics().Aborted, satEscalations, satConflicts))
			fmt.Println(report.IncrRow(name, r.Incr.Analyses,
				r.Incr.NetsReused, r.Incr.NetsRerouted))
			// Provenance breakdown: the baseline analysis (cacheless) and
			// the cache-bypassed signoff — both pure functions of (circuit,
			// configuration), so these rows are stable across -workers,
			// -resume and chaos injection.
			fmt.Println(report.ProvRow(name, "orig", orig.Result.Tiers))
			fmt.Println(report.ProvRow(name, "final", r.Final.Result.Tiers))
			if ledger != nil {
				// Top-K slowest searches of the final classification —
				// timing, so stderr.
				for k, s := range r.Final.Result.Slowest {
					fmt.Fprintln(os.Stderr, report.SlowRow(name, k+1, s))
				}
			}
			avg.Add(r, rtime)
		}
		if *trace {
			fmt.Printf("---- %s iteration trace (Fig. 2 series)\n", name)
			fmt.Print(report.Fig2Trace(r))
		}
	}
	if *table2 && *all {
		fmt.Println(avg.Row())
	}
	return nil
}

// shutdownDebugServer drains the introspection server's in-flight requests
// with a bounded grace period before the process exits. Shutdown flips
// /readyz to draining and releases any /ledger?follow=1 streams, so the
// grace period bounds real request work, not an idle stream.
func shutdownDebugServer(srv *obs.DebugServer) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "obs: debug server shutdown: %v\n", err)
	}
}

// writeObsExports dumps the tracer's Chrome trace and metrics snapshot to
// the files requested by -tracefile / -metricsfile.
func writeObsExports(tracer *obs.Tracer) error {
	write := func(path string, fn func(f *os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(*traceFile, func(f *os.File) error { return tracer.WriteChromeTrace(f) }); err != nil {
		return fmt.Errorf("tracefile: %w", err)
	}
	if err := write(*metrics, func(f *os.File) error { return tracer.WriteMetricsJSON(f) }); err != nil {
		return fmt.Errorf("metricsfile: %w", err)
	}
	return nil
}

// writeHeapProfile snapshots the final live heap into path. The explicit
// GC matters for accuracy: heap profiles are recorded at the previous
// collection, so without one the profile misses everything allocated since
// and over-reports freed memory.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC() // materialize the final live set
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}
