package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/library"
	"dfmresyn/internal/verilog"
)

// The CLI contract under test: the documented exit codes, the signal/kill
// resilience flags, and the guarantee that a -resume run prints the same
// deterministic rows as the uninterrupted run.

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// cli builds the dfmresyn binary once per test run and returns its path.
func cli(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dfmresyn-cli")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "dfmresyn")
		if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("%v\n%s", err, out)
			binPath = ""
		}
	})
	if buildErr != nil || binPath == "" {
		t.Fatalf("building CLI: %v", buildErr)
	}
	return binPath
}

// runCLI executes the binary and returns (stdout, stderr, exit code).
func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(cli(t), args...)
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code
}

// TestExitCodes: the documented exit codes are distinct and deterministic —
// 0 success, 1 usage, 3 constraint violation, 4 interrupted. (2, lint
// findings under -lint strict, is documented but needs a circuit with
// findings; the pipeline's clean benchmarks have none, which is itself
// asserted by the lint tests.)
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no work requested", nil, 1},
		{"missing circuit", []string{"-table2"}, 1},
		{"resume needs one circuit", []string{"-table2", "-all", "-resume", "x.ckpt"}, 1},
		{"bad die spec", []string{"-table2", "-circuit", "sparc_spu", "-die", "huge"}, 1},
		{"bad lint mode", []string{"-table2", "-circuit", "sparc_spu", "-lint", "pedantic"}, 1},
		{"missing journal on resume", []string{"-table2", "-circuit", "sparc_spu", "-resume", filepath.Join(t.TempDir(), "absent.ckpt")}, 1},
		{"success", []string{"-trace", "-circuit", "sparc_spu"}, 0},
		{"constraint violation", []string{"-table2", "-circuit", "sparc_spu", "-die", "4x4"}, 3},
		{"list", []string{"-list"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := runCLI(t, tc.args...)
			if code != tc.want {
				t.Fatalf("%v exited %d, want %d\nstderr:\n%s", tc.args, code, tc.want, stderr)
			}
		})
	}
}

// deterministicRows strips the configuration-sensitive output from a
// -table2 -trace run: it drops the perf and incr diagnostics (cache activity
// and incremental-reuse totals legitimately differ between a golden run and
// a replayed one), drops the prov rows (tier attribution shifts when a tier
// is reconfigured, e.g. -staticproof=off; the dedicated ledger tests pin
// prov invariance across workers/resume/chaos), and blanks the Rtime column
// of the resyn row.
func deterministicRows(t *testing.T, stdout string) string {
	t.Helper()
	var keep []string
	for _, line := range strings.Split(stdout, "\n") {
		f := strings.Fields(line)
		if len(f) > 1 && (f[1] == "perf" || f[1] == "incr" || f[1] == "prov") {
			continue
		}
		if len(f) > 2 && (strings.HasSuffix(f[0], "%") || f[0] == "none") {
			// The resyn row (its circuit column is blank): "<q>% ...
			// <rtime>" — drop the trailing rtime ratio, keep every
			// engineered column.
			line = strings.Join(f[:len(f)-1], " ")
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestInterruptAndResume: a sweep stopped by -stopafter exits 4 with a
// usable journal; -resume from that journal exits 0 and prints the same
// deterministic rows (Table II minus wall time, and the full Fig. 2 trace)
// as the uninterrupted run.
func TestInterruptAndResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.ckpt")
	base := []string{"-table2", "-trace", "-circuit", "sparc_spu"}

	goldenOut, _, code := runCLI(t, base...)
	if code != 0 {
		t.Fatalf("golden run exited %d", code)
	}

	_, stderr, code := runCLI(t, append(base, "-journal", journal, "-stopafter", "1")...)
	if code != 4 {
		t.Fatalf("interrupted run exited %d, want 4\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "-resume") {
		t.Errorf("interrupted run's stderr does not mention -resume:\n%s", stderr)
	}
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("no checkpoint journal after interrupted run: %v", err)
	}

	resumedOut, stderr, code := runCLI(t, append(base, "-resume", journal)...)
	if code != 0 {
		t.Fatalf("resumed run exited %d\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "replayed=1") {
		t.Errorf("resumed run's resilience row does not report the replayed commit:\n%s", stderr)
	}
	if got, want := deterministicRows(t, resumedOut), deterministicRows(t, goldenOut); got != want {
		t.Errorf("resumed output differs from golden\n--- golden:\n%s\n--- resumed:\n%s", want, got)
	}
}

// TestDeadlineInterrupts: a -deadline far below the classification stage's
// cost expires inside it; the run aborts at a deterministic boundary and
// exits 4.
func TestDeadlineInterrupts(t *testing.T) {
	_, stderr, code := runCLI(t, "-trace", "-circuit", "sparc_spu", "-deadline", "1ns")
	if code != 4 {
		t.Fatalf("deadline run exited %d, want 4\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "interrupted") {
		t.Errorf("deadline expiry not reported as an interruption:\n%s", stderr)
	}
}

// TestSigintGraceful: SIGINT mid-run cancels the pipeline's context; the
// process reports the interruption and exits 4 instead of dying on the
// default signal disposition.
func TestSigintGraceful(t *testing.T) {
	cmd := exec.Command(cli(t), "-table2", "-circuit", "aes_core")
	var errb strings.Builder
	cmd.Stderr = &errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// aes_core's original analysis alone runs for seconds; 500ms lands the
	// signal well inside the pipeline.
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("interrupted run: %v (stderr:\n%s)", err, errb.String())
		}
		if ee.ExitCode() != 4 {
			t.Fatalf("SIGINT exited %d, want 4\nstderr:\n%s", ee.ExitCode(), errb.String())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("process did not exit within 30s of SIGINT")
	}
}

// TestChaosFlagKeepsStdout: -chaospanic injects recoverable worker panics;
// stdout must stay byte-identical to the clean run (modulo wall time) while
// stderr's resilience row reports the recoveries.
func TestChaosFlagKeepsStdout(t *testing.T) {
	base := []string{"-table2", "-trace", "-circuit", "sparc_spu"}
	cleanOut, _, code := runCLI(t, base...)
	if code != 0 {
		t.Fatalf("clean run exited %d", code)
	}
	chaosOut, stderr, code := runCLI(t, append(base, "-chaospanic", "0.05")...)
	if code != 0 {
		t.Fatalf("chaos run exited %d\nstderr:\n%s", code, stderr)
	}
	if strings.Contains(stderr, "recovered=0 ") {
		t.Errorf("5%% injection recovered nothing:\n%s", stderr)
	}
	if got, want := deterministicRows(t, chaosOut), deterministicRows(t, cleanOut); got != want {
		t.Errorf("chaos changed stdout\n--- clean:\n%s\n--- chaos:\n%s", want, got)
	}
}

// TestStaticProofFlag: bad values are usage errors; off/screen/seed all
// run; screen (the default) and off print byte-identical deterministic
// rows — the screen only removes searches that were going to prove a
// negative, never a verdict or a test vector.
func TestStaticProofFlag(t *testing.T) {
	_, stderr, code := runCLI(t, "-table2", "-circuit", "sparc_spu", "-staticproof", "bogus")
	if code != 1 {
		t.Fatalf("bad -staticproof exited %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "staticproof") {
		t.Errorf("usage error should name the flag; stderr:\n%s", stderr)
	}

	base := []string{"-table2", "-trace", "-circuit", "sparc_spu"}
	offOut, _, code := runCLI(t, append(base, "-staticproof", "off")...)
	if code != 0 {
		t.Fatalf("-staticproof=off exited %d", code)
	}
	defOut, _, code := runCLI(t, base...)
	if code != 0 {
		t.Fatalf("default run exited %d", code)
	}
	if got, want := deterministicRows(t, defOut), deterministicRows(t, offOut); got != want {
		t.Errorf("default (screen) rows differ from -staticproof=off:\n--- screen ---\n%s\n--- off ---\n%s", got, want)
	}
	// The perf row reports the screen's yield when on, and "off" when off.
	if !strings.Contains(defOut, "proved/0-search") {
		t.Errorf("screen run should report its static yield; stdout:\n%s", defOut)
	}
	if !strings.Contains(offOut, "static off") {
		t.Errorf("off run should report the screen disabled; stdout:\n%s", offOut)
	}

	seedOut, _, code := runCLI(t, append(base, "-staticproof", "seed")...)
	if code != 0 {
		t.Fatalf("-staticproof=seed exited %d", code)
	}
	if got, want := deterministicRows(t, seedOut), deterministicRows(t, offOut); got != want {
		t.Errorf("-staticproof=seed rows differ from off:\n--- seed ---\n%s\n--- off ---\n%s", got, want)
	}
}

// TestSpatialFlag: bad values are usage errors; -spatial=off (the naive
// full-scan escape hatch) prints byte-identical deterministic rows to the
// default grid index — the CLI face of the differential harness.
func TestSpatialFlag(t *testing.T) {
	_, stderr, code := runCLI(t, "-table2", "-circuit", "sparc_spu", "-spatial", "quadtree")
	if code != 1 {
		t.Fatalf("bad -spatial exited %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "spatial") {
		t.Errorf("usage error should name the flag; stderr:\n%s", stderr)
	}

	base := []string{"-table2", "-trace", "-circuit", "sparc_spu"}
	gridOut, _, code := runCLI(t, base...)
	if code != 0 {
		t.Fatalf("default (grid) run exited %d", code)
	}
	offOut, _, code := runCLI(t, append(base, "-spatial", "off")...)
	if code != 0 {
		t.Fatalf("-spatial=off exited %d", code)
	}
	if got, want := deterministicRows(t, gridOut), deterministicRows(t, offOut); got != want {
		t.Errorf("grid rows differ from -spatial=off:\n--- grid ---\n%s\n--- off ---\n%s", got, want)
	}
}

// TestFromVerilogFlag: a netlist written by the flow's own Verilog writer
// analyzes through -fromverilog (reproducibly: two runs print identical
// deterministic rows), a missing file is an I/O error (exit 1), and the
// flag rejects being combined with -circuit/-all/-table1. The ingested
// circuit is the builtin one with gates renumbered into Levelize order, so
// its layout — and with it the fault universe — legitimately differs from
// the builtin run's; equality is asserted structurally by the verilog
// package's round-trip test, not here.
func TestFromVerilogFlag(t *testing.T) {
	c := bench.MustBuild("sparc_spu", library.OSU018Like())
	path := filepath.Join(t.TempDir(), "spu.v")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := verilog.WriteModule(f, c); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	base := []string{"-table2", "-trace"}
	vlogOut, stderr, code := runCLI(t, append(base, "-fromverilog", path)...)
	if code != 0 {
		t.Fatalf("-fromverilog run exited %d\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(vlogOut, "sparc_spu") {
		t.Errorf("-fromverilog output does not carry the module name:\n%s", vlogOut)
	}
	againOut, _, code := runCLI(t, append(base, "-fromverilog", path)...)
	if code != 0 {
		t.Fatalf("second -fromverilog run exited %d", code)
	}
	if got, want := deterministicRows(t, againOut), deterministicRows(t, vlogOut); got != want {
		t.Errorf("-fromverilog runs are not reproducible:\n--- first ---\n%s\n--- second ---\n%s", want, got)
	}

	if _, _, code := runCLI(t, "-table2", "-fromverilog", filepath.Join(t.TempDir(), "absent.v")); code != 1 {
		t.Errorf("missing -fromverilog file exited %d, want 1", code)
	}
	if _, _, code := runCLI(t, "-table2", "-fromverilog", path, "-circuit", "tv80"); code != 1 {
		t.Errorf("-fromverilog with -circuit exited %d, want 1", code)
	}
}
