// Command dfmserve is the long-running multi-tenant analysis server:
// clients POST circuits plus sweep options to /jobs and poll (or stream)
// results; a bounded scheduler runs the sweeps; every job's state is
// journaled so a killed server restarts into a consistent fleet and
// resumes interrupted jobs from their checkpoints; and a persistent
// content-addressed verdict store under -datadir warms every job from all
// previous jobs' and processes' classification work.
//
// Exit codes: 0 on clean shutdown (SIGINT/SIGTERM drain), 1 on startup or
// serve errors.
//
// Endpoints (see internal/serve): POST /jobs, GET /jobs, GET /jobs/{id},
// GET /jobs/{id}/ledger[?follow=1], GET /store, plus the standard debug
// set (/metrics /spans /healthz /readyz /version /debug/pprof).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dfmresyn/internal/serve"
)

var (
	addr       = flag.String("addr", "127.0.0.1:8424", "listen address")
	addrFile   = flag.String("addrfile", "", "write the bound address to this file (':0' support for scripts and tests)")
	dataDir    = flag.String("datadir", "", "persistent state directory (required): verdict store, job journals, checkpoints, ledgers")
	slots      = flag.Int("slots", 0, "concurrently running jobs (0 = NumCPU)")
	queueCap   = flag.Int("queue", 0, "pending-job queue bound (0 = 16)")
	jobTimeout = flag.Duration("jobtimeout", 0, "per-job wall-time bound (0 = none)")
	drainWait  = flag.Duration("drain", 2*time.Minute, "graceful-drain bound on SIGINT/SIGTERM")
	chaosPanic = flag.Float64("chaospanic", 0, "inject ATPG worker panics at this rate into every job (chaos harness)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dfmserve:", err)
		os.Exit(1)
	}
}

func run() error {
	if *dataDir == "" {
		return fmt.Errorf("-datadir is required")
	}
	s, err := serve.New(serve.Options{
		DataDir:    *dataDir,
		Slots:      *slots,
		QueueCap:   *queueCap,
		JobTimeout: *jobTimeout,
		ChaosPanic: *chaosPanic,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Drain(ctx)
		return err
	}
	if *addrFile != "" {
		// Atomic write: a script polling the file never reads a torn
		// address.
		tmp := *addrFile + ".tmp"
		if werr := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); werr == nil {
			os.Rename(tmp, *addrFile)
		}
	}
	st := s.Store().Stats()
	fmt.Fprintf(os.Stderr, "dfmserve: listening on http://%s (datadir %s, store %d entries", ln.Addr(), *dataDir, s.Store().Len())
	if st.HealedRecords > 0 || st.QuarantinedSegs > 0 {
		fmt.Fprintf(os.Stderr, ", healed %d records, quarantined %d segments", st.HealedRecords, st.QuarantinedSegs)
	}
	fmt.Fprintln(os.Stderr, ")")

	srv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "dfmserve: %v: draining (bound %v)\n", sig, *drainWait)
		// Readiness flips to 503 immediately while the listener keeps
		// answering, so probes and clients see an orderly drain; running
		// jobs are interrupted at their next deterministic boundary and
		// journaled re-admittable — the next start resumes them.
		dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if derr := s.Drain(dctx); derr != nil {
			fmt.Fprintln(os.Stderr, "dfmserve:", derr)
		}
		hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer hcancel()
		srv.Shutdown(hctx)
		fmt.Fprintln(os.Stderr, "dfmserve: drained")
		return nil
	case err := <-serveErr:
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		s.Drain(ctx)
		return err
	}
}
