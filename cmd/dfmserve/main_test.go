package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// The contract under test, end to end across real OS processes: a q-sweep
// submitted to dfmserve and SIGKILLed mid-run is re-admitted on restart and
// completes with a ledger digest byte-identical to an uninterrupted run's;
// and a second cold process sharing the data directory reports nonzero
// warm verdict-store hits.

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func cli(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dfmserve-cli")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "dfmserve")
		if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("%v\n%s", err, out)
			binPath = ""
		}
	})
	if buildErr != nil || binPath == "" {
		t.Fatalf("building dfmserve: %v", buildErr)
	}
	return binPath
}

// server is one live dfmserve process.
type server struct {
	cmd  *exec.Cmd
	url  string
	errb *strings.Builder
}

// startServer launches dfmserve on datadir and waits for its address file.
func startServer(t *testing.T, datadir string, extra ...string) *server {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{
		"-addr", "127.0.0.1:0", "-addrfile", addrFile,
		"-datadir", datadir, "-slots", "1",
	}, extra...)
	cmd := exec.Command(cli(t), args...)
	errb := &strings.Builder{}
	cmd.Stderr = errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return &server{cmd: cmd, url: "http://" + strings.TrimSpace(string(data)), errb: errb}
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("dfmserve never published its address\nstderr:\n%s", errb)
	return nil
}

// sigterm drains the server gracefully and waits for exit 0.
func (s *server) sigterm(t *testing.T) {
	t.Helper()
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := s.cmd.Wait(); err != nil {
		t.Fatalf("dfmserve did not drain cleanly: %v\nstderr:\n%s", err, s.errb)
	}
}

// sigkill is the hard kill: no drain, no journal flush beyond what already
// hit the disk.
func (s *server) sigkill(t *testing.T) {
	t.Helper()
	if err := s.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	s.cmd.Wait()
}

type jobView struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Error  string `json:"error"`
	Result *struct {
		LedgerDigest    string `json:"ledgerDigest"`
		Resumed         bool   `json:"resumed"`
		ReplayedCommits int    `json:"replayedCommits"`
		WarmHits        uint64 `json:"warmHits"`
		Prewarmed       int    `json:"prewarmed"`
		Commits         int    `json:"commits"`
		U               int    `json:"u"`
	} `json:"result"`
}

func postJob(t *testing.T, s *server, body string) jobView {
	t.Helper()
	resp, err := http.Post(s.url+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /jobs = %d %s", resp.StatusCode, b)
	}
	var v jobView
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("POST /jobs response %q: %v", b, err)
	}
	return v
}

// waitDone's deadline is generous: under `make test` this package shares
// the machine with every other test binary (some race-enabled), and the
// sweep's wall time stretches with that contention.
func waitDone(t *testing.T, s *server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(s.url + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var v jobView
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatalf("GET /jobs/%s = %q: %v", id, b, err)
		}
		switch v.State {
		case "done":
			return v
		case "failed":
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s never completed", id)
	return jobView{}
}

// TestServeSmoke is the chaos acceptance run. des_perf's sweep accepts
// several commits over a few seconds, leaving a wide window in which the
// hard kill lands mid-run with a checkpoint already journaled.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test")
	}
	const spec = `{"bench":"des_perf"}`

	// Uninterrupted baseline in its own data directory.
	dirA := t.TempDir()
	a := startServer(t, dirA)
	av := postJob(t, a, spec)
	golden := waitDone(t, a, av.ID)
	if golden.Result.LedgerDigest == "" || golden.Result.Commits == 0 {
		t.Fatalf("baseline run is vacuous: %+v", golden.Result)
	}
	a.sigterm(t)

	// Same spec on a fresh data directory; SIGKILL the server the moment
	// the job's first checkpoint hits the disk (mid-sweep by construction:
	// a completed job deletes its checkpoint).
	dirB := t.TempDir()
	b := startServer(t, dirB)
	bv := postJob(t, b, spec)
	ckpt := filepath.Join(dirB, "jobs", bv.ID+".ckpt")
	deadline := time.Now().Add(4 * time.Minute)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never wrote a checkpoint\nstderr:\n%s", bv.ID, b.errb)
		}
		time.Sleep(10 * time.Millisecond)
	}
	b.sigkill(t)

	// Restart on the same data directory: recovery re-admits the job; the
	// idempotent resubmission of the same spec lands on it; and it resumes
	// to a digest byte-identical to the uninterrupted run's.
	b2 := startServer(t, dirB)
	rv := postJob(t, b2, spec)
	if rv.ID != bv.ID {
		t.Fatalf("resubmitted spec mapped to job %s, want %s", rv.ID, bv.ID)
	}
	fin := waitDone(t, b2, bv.ID)
	if !fin.Result.Resumed || fin.Result.ReplayedCommits == 0 {
		t.Errorf("restarted job did not resume from its checkpoint: %+v", fin.Result)
	}
	if fin.Result.LedgerDigest != golden.Result.LedgerDigest {
		t.Errorf("resumed digest %s != uninterrupted %s",
			fin.Result.LedgerDigest, golden.Result.LedgerDigest)
	}
	if fin.Result.U != golden.Result.U {
		t.Errorf("resumed U=%d != uninterrupted U=%d", fin.Result.U, golden.Result.U)
	}
	b2.sigterm(t)

	// A second cold process on the shared data directory: its first job
	// prewarm from the verdict store and reports warm hits.
	b3 := startServer(t, dirB)
	wv := postJob(t, b3, `{"bench":"des_perf","name":"warm"}`)
	warm := waitDone(t, b3, wv.ID)
	if warm.Result.Prewarmed == 0 || warm.Result.WarmHits == 0 {
		t.Errorf("cold process saw no store warmth: prewarmed=%d warmHits=%d",
			warm.Result.Prewarmed, warm.Result.WarmHits)
	}
	if warm.Result.U != golden.Result.U {
		t.Errorf("warm-started job changed results: U=%d want %d", warm.Result.U, golden.Result.U)
	}
	b3.sigterm(t)
}

// TestServeCLIErrors pins the startup failure modes.
func TestServeCLIErrors(t *testing.T) {
	out, err := exec.Command(cli(t)).CombinedOutput()
	if err == nil || !strings.Contains(string(out), "-datadir") {
		t.Errorf("missing -datadir: err=%v out=%s", err, out)
	}
	dir := t.TempDir()
	s := startServer(t, dir)
	defer s.sigterm(t)
	// A second server on the same data directory must fail fast on the
	// store lock, not corrupt shared state.
	out, err = exec.Command(cli(t), "-addr", "127.0.0.1:0", "-datadir", dir).CombinedOutput()
	if err == nil || !strings.Contains(string(out), "lock") {
		t.Errorf("second server on one datadir: err=%v out=%s", err, out)
	}
}
