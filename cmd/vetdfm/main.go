// Command vetdfm runs the determinism vet suite (internal/analyzers)
// over the repository's deterministic packages and fails when any rule
// fires. The flow's acceptance criterion is byte-identical tables
// across runs, worker counts and checkpoint resumes; these rules catch
// the three classic ways Go code silently breaks that — wall-clock
// reads, global rand streams, and map-iteration order leaking into
// output — before a flaky golden diff does.
//
// The package list is pinned, not discovered: flow and obs are
// excluded on purpose (they own the wall clock — flow stamps run
// times, obs is the tracing clock), and cmd/ is excluded because the
// CLI prints wall time to stderr. Everything else in internal/ must
// stay deterministic. A site with a vetted reason to break a rule
// carries a `//vetdfm:ok <rule>` waiver comment.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"dfmresyn/internal/analyzers"
)

// deterministicDirs lists every package whose outputs feed tables,
// caches, checkpoints or hashes. Additions to internal/ belong here
// unless they own wall-clock or entropy by design — internal/obs (span
// timing) and internal/serve (scheduling deadlines and drain timeouts)
// are excluded on those grounds; internal/vstore is pinned because its
// segment format is content-addressed state shared across processes.
var deterministicDirs = []string{
	"internal/analyzers",
	"internal/atpg",
	"internal/bench",
	"internal/chaos",
	"internal/cluster",
	"internal/dfm",
	"internal/doublefault",
	"internal/equiv",
	"internal/fault",
	"internal/faultsim",
	"internal/fcache",
	"internal/geom",
	"internal/implic",
	"internal/library",
	"internal/lint",
	"internal/logic",
	"internal/netlist",
	"internal/par",
	"internal/place",
	"internal/power",
	"internal/report",
	"internal/resilience",
	"internal/resyn",
	"internal/route",
	"internal/scan",
	"internal/sim",
	"internal/sta",
	"internal/switchsim",
	"internal/synth",
	"internal/verilog",
	"internal/vstore",
	"internal/yield",
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	total := 0
	for _, dir := range deterministicDirs {
		path := filepath.Join(root, dir)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "vetdfm: pinned package %s is gone; update the list\n", dir)
			os.Exit(2)
		}
		findings, err := analyzers.RunDir(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vetdfm: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f.String())
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "vetdfm: %d finding(s)\n", total)
		os.Exit(1)
	}
}
