// Command netlint runs the static analyzer of internal/lint over circuit
// files in the netlist text format and/or the built-in benchmark circuits,
// and exits non-zero when findings reach the -fail-on severity. Typical
// usage:
//
//	netlint examples/circuits/*.ckt          # lint files, fail on errors
//	netlint -format=json broken.ckt          # machine-readable report
//	netlint -fail-on=warning design.ckt      # treat warnings as failures
//	netlint -bench=all                       # lint every benchmark circuit
//	netlint -rules                           # print the rule catalog
//
// Files are parsed leniently (see lint.ReadLoose): malformed circuits are
// diagnosed rather than rejected, so a file with a combinational cycle or a
// duplicate net name produces findings instead of a parse abort.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/library"
	"dfmresyn/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit, for tests. It returns the exit
// code: 0 clean, 1 findings at or above -fail-on, 2 usage or I/O error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("netlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "text", "report format: text or json")
	failOn := fs.String("fail-on", "error", "lowest severity that fails the run: error, warning or info")
	benchName := fs.String("bench", "", "lint a built-in benchmark circuit by name, or \"all\"")
	rules := fs.Bool("rules", false, "print the rule catalog and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: netlint [flags] [circuit.ckt ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *rules {
		printRules(stdout)
		return 0
	}

	failSev, err := lint.ParseSeverity(*failOn)
	if err != nil {
		fmt.Fprintf(stderr, "netlint: %v\n", err)
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "netlint: unknown format %q (want text or json)\n", *format)
		return 2
	}
	if *benchName == "" && fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	lib := library.OSU018Like()
	var all []lint.Finding

	for _, path := range fs.Args() {
		_, findings, err := lint.LoadFile(path, lib)
		if err != nil {
			fmt.Fprintf(stderr, "netlint: %v\n", err)
			return 2
		}
		all = append(all, prefixed(path, findings)...)
	}

	if *benchName != "" {
		names := []string{*benchName}
		if *benchName == "all" {
			names = bench.Names
		}
		for _, name := range names {
			c, err := bench.Build(name, lib)
			if err != nil {
				fmt.Fprintf(stderr, "netlint: %v\n", err)
				return 2
			}
			all = append(all, prefixed(name, lint.Run(&lint.Context{Circuit: c}))...)
		}
	}

	lint.Sort(all)
	if *format == "json" {
		if err := lint.WriteJSON(stdout, all); err != nil {
			fmt.Fprintf(stderr, "netlint: %v\n", err)
			return 2
		}
	} else {
		if err := lint.WriteText(stdout, all); err != nil {
			fmt.Fprintf(stderr, "netlint: %v\n", err)
			return 2
		}
	}
	if lint.CountAtLeast(all, failSev) > 0 {
		return 1
	}
	return 0
}

// prefixed tags each finding's message with its source (file path or
// benchmark name) so multi-input runs stay attributable.
func prefixed(src string, findings []lint.Finding) []lint.Finding {
	for i := range findings {
		findings[i].Message = src + ": " + findings[i].Message
	}
	return findings
}

// printRules writes the catalog of built-in rules.
func printRules(w io.Writer) {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	for _, r := range lint.Builtin().Rules() {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", r.Name(), r.Severity(), r.Doc())
	}
	tw.Flush()
}
