package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const testdata = "../../internal/lint/testdata/"

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestBrokenCircuitsFail(t *testing.T) {
	for _, f := range []string{"broken_cycle.ckt", "broken_dup.ckt", "broken_arity.ckt", "broken_undriven.ckt"} {
		code, out, _ := runCLI(t, testdata+f)
		if code != 1 {
			t.Errorf("%s: exit %d, want 1\n%s", f, code, out)
		}
	}
}

func TestCleanCircuitsPass(t *testing.T) {
	code, out, _ := runCLI(t,
		testdata+"good_small.ckt",
		"../../examples/circuits/majority3.ckt",
		"../../examples/circuits/parity4.ckt")
	if code != 0 {
		t.Errorf("clean circuits: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "0 findings") {
		t.Errorf("missing summary line: %q", out)
	}
}

func TestJSONFormat(t *testing.T) {
	code, out, _ := runCLI(t, "-format=json", testdata+"broken_cycle.ckt")
	if code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	var rep struct {
		Findings []struct {
			Rule string `json:"rule"`
		} `json:"findings"`
		Errors int `json:"errors"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Errors == 0 || len(rep.Findings) == 0 {
		t.Errorf("expected error findings, got %+v", rep)
	}
}

func TestFailOnSeverity(t *testing.T) {
	// broken_dup has warnings beyond its error; good circuits have none.
	if code, _, _ := runCLI(t, "-fail-on=warning", testdata+"good_small.ckt"); code != 0 {
		t.Errorf("good_small -fail-on=warning: exit %d, want 0", code)
	}
	// Bench circuits carry intentional dead cones: warnings, no errors.
	if code, _, _ := runCLI(t, "-bench=wb_conmax"); code != 0 {
		t.Errorf("bench wb_conmax: exit %d, want 0", code)
	}
	if code, _, _ := runCLI(t, "-fail-on=warning", "-bench=wb_conmax"); code != 1 {
		t.Errorf("bench wb_conmax -fail-on=warning: exit %d, want 1", code)
	}
}

func TestRulesCatalog(t *testing.T) {
	code, out, _ := runCLI(t, "-rules")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, want := range []string{"struct/cycle", "pipe/region-convex", "fault/live-site"} {
		if !strings.Contains(out, want) {
			t.Errorf("catalog missing %s", want)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Error("no inputs should exit 2")
	}
	if code, _, _ := runCLI(t, "-fail-on=fatal", testdata+"good_small.ckt"); code != 2 {
		t.Error("bad -fail-on should exit 2")
	}
	if code, _, _ := runCLI(t, "-format=xml", testdata+"good_small.ckt"); code != 2 {
		t.Error("bad -format should exit 2")
	}
	if code, _, _ := runCLI(t, "no_such_file.ckt"); code != 2 {
		t.Error("missing file should exit 2")
	}
	if code, _, _ := runCLI(t, "-bench=nope"); code != 2 {
		t.Error("unknown bench should exit 2")
	}
}
