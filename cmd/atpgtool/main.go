// Command atpgtool runs the DFM fault flow (place, route, guideline check,
// ATPG) on one benchmark circuit and reports fault statistics by model and
// status, plus the guideline violation tallies.
//
// Usage:
//
//	atpgtool -circuit aes_core
//	atpgtool -circuit tv80 -undetectable   # list the members of U
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/fault"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
	"dfmresyn/internal/scan"
	"dfmresyn/internal/verilog"
	"dfmresyn/internal/yield"
)

func main() {
	var (
		circuit = flag.String("circuit", "", "benchmark circuit name")
		listU   = flag.Bool("undetectable", false, "list every undetectable fault")
		vOut    = flag.String("verilog", "", "export the netlist as structural Verilog to this file")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *circuit == "" {
		fmt.Fprintln(os.Stderr, "pass -circuit <name>")
		os.Exit(2)
	}

	env := flow.NewEnv()
	env.Seed = *seed
	env.ATPG.Seed = *seed
	c, err := bench.Build(*circuit, env.Lib)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	d, err := env.Analyze(c, geom.Rect{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	st := c.Stats()
	fmt.Printf("circuit %s: %d gates, %d nets, %d PIs, %d POs, area %.0f\n",
		c.Name, st.Gates, st.Nets, st.PIs, st.POs, st.Area)
	fmt.Printf("die %dx%d, wirelength %d, vias %d, critical delay %.1f, power %.1f\n",
		d.Die.W(), d.Die.H(), d.Lay.TotalWireLength(), d.Lay.TotalVias(),
		d.Timing.CriticalDelay, d.Power.Total)

	counts := d.Faults.Count()
	fmt.Printf("\nfaults F=%d (internal %d, external %d)\n", counts.Total, counts.Internal, counts.External)
	for _, m := range []fault.Model{fault.StuckAt, fault.Transition, fault.Bridge, fault.CellAware} {
		fmt.Printf("  %-11s %6d (undetectable %d)\n", m, counts.ByModel[m], counts.UndetectableByModel[m])
	}
	fmt.Printf("detected %d, undetectable %d, aborted %d; coverage %.2f%%; tests %d\n",
		counts.Detected, counts.Undetectable, counts.Aborted, 100*d.Faults.Coverage(), len(d.Result.Tests))

	fmt.Printf("\nclusters: %d subsets, Smax=%d, Gmax=%d, G_U=%d\n",
		len(d.Clusters.Sets), len(d.Clusters.Smax()), len(d.Clusters.Gmax()), len(d.Clusters.GU))

	// Scan-chain view: tester time for the generated test set, and the
	// test-escape DPPM estimate driven by the undetectable clusters.
	ch := scan.Build(d.P)
	tt := ch.Time(len(d.Result.Tests))
	fmt.Printf("\nscan chain: %d flops, stitch length %d; tester time %d cycles for %d tests\n",
		ch.Length(), ch.WireLength, tt.Cycles, tt.Tests)
	est := yield.DefaultModel().Assess(d)
	fmt.Printf("test-escape risk: %.2f DPPM across %d escape sites (%.0f%% inside large clusters)\n",
		est.DPPM, est.EscapeSites, 100*est.ClusteredRisk)

	fmt.Println("\nguideline violations:")
	ids := make([]string, 0, len(d.DFMRep.PerGuideline))
	for id := range d.DFMRep.PerGuideline {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("  %-8s %6d\n", id, d.DFMRep.PerGuideline[id])
	}

	if *vOut != "" {
		f, err := os.Create(*vOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := verilog.WriteModule(f, c); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nwrote structural Verilog to %s\n", *vOut)
	}

	if *listU {
		fmt.Println("\nundetectable faults:")
		for _, f := range d.Faults.UndetectableFaults() {
			fmt.Printf("  %v\n", f)
		}
	}
}
