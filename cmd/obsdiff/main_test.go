package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dfmresyn/internal/obs"
)

// The contract under test: obsdiff's exit codes — 0 for equivalent ledgers
// (tier migrations allowed), 1 for verdict flips and structural differences,
// 2 for timing regressions only, 3 for unreadable input — and the categories
// it reports.

// emit is one recording step against a live ledger.
type emit func(l *obs.Ledger)

func stage(name, circuit string, us int64) emit {
	return func(l *obs.Ledger) {
		l.Stage(obs.LedgerRecord{Stage: name, Circuit: circuit, Gates: 4, Faults: 2, Micros: us})
	}
}

func verdict(fault int, status string, tier obs.Tier, us int64) emit {
	return func(l *obs.Ledger) {
		l.Verdict(obs.LedgerRecord{Fault: fault, Status: status, Tier: tier, Micros: us})
	}
}

func iter(n, u int) emit {
	return func(l *obs.Ledger) {
		l.Iter(obs.LedgerRecord{Q: 5, Phase: 1, Iter: n, U: u, Smax: 3, F: 10})
	}
}

// writeLedger records the given events into a fresh ledger file and returns
// its path.
func writeLedger(t *testing.T, name string, events ...emit) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	l, err := obs.CreateLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		e(l)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// diff runs obsdiff and returns (stdout, stderr, exit code).
func diff(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

// baseline is a two-stage run with one iteration commit.
func baseline() []emit {
	return []emit{
		stage("analyze", "c17", 100),
		verdict(0, "detected", obs.TierCollateral, 5),
		verdict(1, "undetectable", obs.TierPodem, 900),
		iter(1, 3),
		stage("verify", "c17", 80),
		verdict(0, "detected", obs.TierCollateral, 4),
		verdict(1, "undetectable", obs.TierPodem, 850),
	}
}

func TestSelfDiffIsClean(t *testing.T) {
	a := writeLedger(t, "a.jsonl", baseline()...)
	b := writeLedger(t, "b.jsonl", baseline()...)
	out, _, code := diff(t, a, b)
	if code != 0 {
		t.Fatalf("identical ledgers exited %d\n%s", code, out)
	}
	if !strings.Contains(out, "ledgers are equivalent") {
		t.Errorf("missing equivalence verdict:\n%s", out)
	}
	// Both digest lines must agree — the digest ignores the timing fields,
	// which is the only way two separate runs can ever match.
	lines := strings.Split(out, "\n")
	da := strings.Fields(lines[0])
	db := strings.Fields(lines[1])
	if da[len(da)-1] != db[len(db)-1] {
		t.Errorf("digests differ for identical content:\n%s", out)
	}
}

func TestTimingNeverAffectsEquivalence(t *testing.T) {
	a := writeLedger(t, "a.jsonl", baseline()...)
	slow := baseline()
	slow[2] = verdict(1, "undetectable", obs.TierPodem, 90000) // 100x slower
	b := writeLedger(t, "b.jsonl", slow...)
	if out, _, code := diff(t, a, b); code != 0 {
		t.Fatalf("timing-only difference exited %d without -regress\n%s", code, out)
	}
	out, _, code := diff(t, "-regress", "2", a, b)
	if code != 2 {
		t.Fatalf("100x slowdown under -regress=2 exited %d, want 2\n%s", code, out)
	}
	if !strings.Contains(out, "1 timing regressions") {
		t.Errorf("regression not counted:\n%s", out)
	}
	// The same slowdown under the floor is ignored.
	if _, _, code := diff(t, "-regress", "2", "-minus", "1000000", a, b); code != 0 {
		t.Errorf("sub-floor slowdown still flagged")
	}
}

func TestVerdictFlipExitsOne(t *testing.T) {
	a := writeLedger(t, "a.jsonl", baseline()...)
	flipped := baseline()
	flipped[6] = verdict(1, "aborted", obs.TierPodem, 850)
	b := writeLedger(t, "b.jsonl", flipped...)
	out, _, code := diff(t, a, b)
	if code != 1 {
		t.Fatalf("verdict flip exited %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "fault 1 flipped undetectable -> aborted") {
		t.Errorf("flip not described:\n%s", out)
	}
}

func TestMissingFaultExitsOne(t *testing.T) {
	a := writeLedger(t, "a.jsonl", baseline()...)
	b := writeLedger(t, "b.jsonl", baseline()[:6]...) // last verdict gone
	if out, _, code := diff(t, a, b); code != 1 {
		t.Fatalf("missing verdict exited %d, want 1\n%s", code, out)
	}
	// Symmetric: the extra fault is caught from either side.
	if out, _, code := diff(t, b, a); code != 1 {
		t.Fatalf("extra verdict exited %d, want 1\n%s", code, out)
	}
}

func TestTierMigrationIsInformational(t *testing.T) {
	a := writeLedger(t, "a.jsonl", baseline()...)
	moved := baseline()
	moved[2] = verdict(1, "undetectable", obs.TierSAT, 900)
	b := writeLedger(t, "b.jsonl", moved...)
	out, _, code := diff(t, a, b)
	if code != 0 {
		t.Fatalf("tier migration exited %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "fault 1 migrated podem -> sat") {
		t.Errorf("migration not described:\n%s", out)
	}
	if !strings.Contains(out, "1 tier migrations") {
		t.Errorf("migration not counted:\n%s", out)
	}
}

func TestIterationDivergenceExitsOne(t *testing.T) {
	a := writeLedger(t, "a.jsonl", baseline()...)
	diverged := baseline()
	diverged[3] = iter(1, 2) // different U after the commit
	b := writeLedger(t, "b.jsonl", diverged...)
	if out, _, code := diff(t, a, b); code != 1 {
		t.Fatalf("diverged iteration trace exited %d, want 1\n%s", code, out)
	}
}

func TestStageMismatchExitsOne(t *testing.T) {
	a := writeLedger(t, "a.jsonl", baseline()...)
	b := writeLedger(t, "b.jsonl", baseline()[:3]...) // second stage gone
	if out, _, code := diff(t, a, b); code != 1 {
		t.Fatalf("missing stage exited %d, want 1\n%s", code, out)
	}
	renamed := baseline()
	renamed[4] = stage("verify", "c432", 80)
	c := writeLedger(t, "c.jsonl", renamed...)
	if out, _, code := diff(t, a, c); code != 1 {
		t.Fatalf("renamed stage exited %d, want 1\n%s", code, out)
	}
}

func TestTamperedFileWarnsButDiffs(t *testing.T) {
	a := writeLedger(t, "a.jsonl", baseline()...)
	b := writeLedger(t, "b.jsonl", baseline()...)
	// The obsdiff-smoke recipe: flip a verdict in place with sed. The
	// recorded digest no longer matches, which obsdiff warns about on
	// stderr while still reporting the flip.
	data, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(data), `"status":"detected"`, `"status":"undetectable"`, 1)
	if edited == string(data) {
		t.Fatalf("no verdict to flip in:\n%s", data)
	}
	if err := os.WriteFile(b, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errb, code := diff(t, a, b)
	if code != 1 {
		t.Fatalf("tampered ledger exited %d, want 1\n%s", code, out)
	}
	if !strings.Contains(errb, "does not match its records") {
		t.Errorf("no tamper warning on stderr:\n%s", errb)
	}
}

func TestUsageAndIOErrorsExitThree(t *testing.T) {
	a := writeLedger(t, "a.jsonl", baseline()...)
	if _, _, code := diff(t); code != 3 {
		t.Errorf("no args exited %d, want 3", code)
	}
	if _, _, code := diff(t, a); code != 3 {
		t.Errorf("one arg exited %d, want 3", code)
	}
	if _, _, code := diff(t, a, filepath.Join(t.TempDir(), "absent.jsonl")); code != 3 {
		t.Errorf("missing file exited %d, want 3", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"t\":\"verdict\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, code := diff(t, a, bad); code != 3 {
		t.Errorf("malformed ledger exited %d, want 3", code)
	}
}

func TestTopLimitsDetailLines(t *testing.T) {
	mk := func(status string) []emit {
		ev := []emit{stage("analyze", "c17", 0)}
		for i := 0; i < 40; i++ {
			ev = append(ev, verdict(i, status, obs.TierPodem, 0))
		}
		return ev
	}
	a := writeLedger(t, "a.jsonl", mk("detected")...)
	b := writeLedger(t, "b.jsonl", mk("aborted")...)
	out, _, code := diff(t, "-top", "3", a, b)
	if code != 1 {
		t.Fatalf("exited %d, want 1", code)
	}
	if got := strings.Count(out, "flipped"); got != 3 {
		t.Errorf("printed %d flip lines, want 3 (then suppression)", got)
	}
	if !strings.Contains(out, "suppressed") {
		t.Errorf("no suppression notice:\n%s", out)
	}
	if !strings.Contains(out, "40 verdict flips") {
		t.Errorf("summary should still count all 40 flips:\n%s", out)
	}
}
