// Command obsdiff compares two run flight-recorder ledgers (the JSONL files
// written by dfmresyn -ledger) and reports how the runs' fault verdicts
// diverged:
//
//   - verdict flips — a fault whose final status changed, a fault present in
//     one run but not the other, or a structural mismatch (different stage
//     sequence or iteration trace),
//   - tier migrations — same verdict, decided by a different engine tier
//     (informational: the answer held, the path to it moved),
//   - timing regressions — a search that got slower than -regress times its
//     old cost (off by default, because wall time is the one
//     non-deterministic field in a ledger).
//
// Two runs under the same configuration produce byte-identical canonical
// ledgers, so obsdiff over them prints matching digests and exits 0 — which
// makes it usable as a regression gate in CI: record a golden ledger, diff
// every candidate run against it.
//
// Usage:
//
//	obsdiff [-regress F] [-minus N] [-top K] old.jsonl new.jsonl
//
// Exit codes: 0 equivalent (tier migrations allowed), 1 verdict flips or
// structural differences, 2 timing regressions only, 3 unreadable input or
// usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dfmresyn/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// stageBlock groups one stage record with the verdicts that follow it.
type stageBlock struct {
	rec      obs.LedgerRecord
	verdicts []obs.LedgerRecord
	byFault  map[int]obs.LedgerRecord
}

// label names a stage block in diff output: "analyze sparc_spu".
func (b stageBlock) label() string {
	if b.rec.T == "" {
		return "(unlabeled)"
	}
	return fmt.Sprintf("%s %s", b.rec.Stage, b.rec.Circuit)
}

// ledgerFile is one parsed ledger: its stage blocks, its iteration trace,
// and both digests — the one recomputed from the records and the one the
// writer recorded in the trailing summary (empty for a truncated file).
type ledgerFile struct {
	path     string
	stages   []stageBlock
	iters    []obs.LedgerRecord
	events   int
	digest   string
	recorded string
}

func loadLedger(path string) (*ledgerFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := obs.ReadLedger(f)
	if err != nil {
		return nil, err
	}
	lf := &ledgerFile{path: path}
	lf.digest, err = obs.LedgerDigest(recs)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		switch rec.T {
		case "stage":
			lf.stages = append(lf.stages, stageBlock{rec: rec, byFault: map[int]obs.LedgerRecord{}})
			lf.events++
		case "verdict":
			// The writer emits a stage before its verdicts; tolerate a
			// hand-edited file that doesn't with an unlabeled block.
			if len(lf.stages) == 0 {
				lf.stages = append(lf.stages, stageBlock{byFault: map[int]obs.LedgerRecord{}})
			}
			b := &lf.stages[len(lf.stages)-1]
			b.verdicts = append(b.verdicts, rec)
			b.byFault[rec.Fault] = rec
			lf.events++
		case "iter":
			lf.iters = append(lf.iters, rec)
			lf.events++
		case "summary":
			lf.recorded = rec.Digest
		}
	}
	return lf, nil
}

// differ accumulates and prints the diff, keeping only the first -top
// detail lines per category so a wholesale divergence stays readable.
type differ struct {
	w                          io.Writer
	top                        int
	flips, migrations, regress int
	lines                      map[string]int // printed per category
}

func (d *differ) report(category string, n *int, format string, args ...any) {
	*n++
	if d.lines[category] < d.top {
		fmt.Fprintf(d.w, format+"\n", args...)
		d.lines[category]++
	} else if d.lines[category] == d.top {
		fmt.Fprintf(d.w, "  ... (further %s suppressed; raise -top)\n", category)
		d.lines[category]++
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("obsdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	regress := fs.Float64("regress", 0,
		"flag searches slower than this factor times their old cost (0 disables the timing check)")
	minUs := fs.Int64("minus", 1000,
		"ignore timing changes where both sides are under this many microseconds")
	top := fs.Int("top", 10, "detail lines to print per difference category")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: obsdiff [-regress F] [-minus N] [-top K] old.jsonl new.jsonl")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 3
	}

	var files [2]*ledgerFile
	for i, path := range fs.Args() {
		lf, err := loadLedger(path)
		if err != nil {
			fmt.Fprintf(stderr, "obsdiff: %s: %v\n", path, err)
			return 3
		}
		files[i] = lf
	}
	old, new := files[0], files[1]
	for _, lf := range files {
		fmt.Fprintf(stdout, "%s: %d events, digest %s\n", lf.path, lf.events, lf.digest)
		if lf.recorded != "" && lf.recorded != lf.digest {
			fmt.Fprintf(stderr, "obsdiff: %s: recorded digest %s does not match its records — file modified or truncated\n",
				lf.path, lf.recorded)
		}
	}
	if old.digest == new.digest && *regress <= 0 {
		fmt.Fprintln(stdout, "ledgers are equivalent")
		return 0
	}

	d := &differ{w: stdout, top: *top, lines: map[string]int{}}
	diffStages(d, old, new, *regress, *minUs)
	diffIters(d, old, new)

	fmt.Fprintf(stdout, "%d verdict flips, %d tier migrations, %d timing regressions\n",
		d.flips, d.migrations, d.regress)
	switch {
	case d.flips > 0:
		return 1
	case d.regress > 0:
		return 2
	}
	fmt.Fprintln(stdout, "ledgers are equivalent")
	return 0
}

// diffStages pairs stage blocks by order and compares their verdicts by
// fault ID. Verdicts are a stage-local total function of the fault list, so
// a fault on one side only is a flip, not a soft difference.
func diffStages(d *differ, old, new *ledgerFile, regress float64, minUs int64) {
	n := len(old.stages)
	if len(new.stages) != n {
		d.report("flips", &d.flips, "stage count differs: %d -> %d", n, len(new.stages))
		if len(new.stages) < n {
			n = len(new.stages)
		}
	}
	for s := 0; s < n; s++ {
		ob, nb := old.stages[s], new.stages[s]
		if ob.rec.Stage != nb.rec.Stage || ob.rec.Circuit != nb.rec.Circuit {
			d.report("flips", &d.flips, "stage %d: %s -> %s", s+1, ob.label(), nb.label())
			continue
		}
		for _, ov := range ob.verdicts {
			nv, ok := nb.byFault[ov.Fault]
			if !ok {
				d.report("flips", &d.flips, "stage %d (%s): fault %d has no verdict in %s",
					s+1, ob.label(), ov.Fault, new.path)
				continue
			}
			if ov.Status != nv.Status {
				d.report("flips", &d.flips, "stage %d (%s): fault %d flipped %s -> %s",
					s+1, ob.label(), ov.Fault, ov.Status, nv.Status)
				continue
			}
			if ov.Tier != nv.Tier {
				d.report("migrations", &d.migrations, "stage %d (%s): fault %d migrated %s -> %s (status %s)",
					s+1, ob.label(), ov.Fault, ov.Tier, nv.Tier, ov.Status)
			}
			if regress > 0 && (ov.Micros >= minUs || nv.Micros >= minUs) &&
				float64(nv.Micros) > regress*float64(ov.Micros) {
				d.report("regressions", &d.regress, "stage %d (%s): fault %d search cost %dus -> %dus",
					s+1, ob.label(), ov.Fault, ov.Micros, nv.Micros)
			}
		}
		for _, nv := range nb.verdicts {
			if _, ok := ob.byFault[nv.Fault]; !ok {
				d.report("flips", &d.flips, "stage %d (%s): fault %d has no verdict in %s",
					s+1, ob.label(), nv.Fault, old.path)
			}
		}
		if regress > 0 && (ob.rec.Micros >= minUs || nb.rec.Micros >= minUs) &&
			float64(nb.rec.Micros) > regress*float64(ob.rec.Micros) {
			d.report("regressions", &d.regress, "stage %d (%s): stage wall time %dus -> %dus",
				s+1, ob.label(), ob.rec.Micros, nb.rec.Micros)
		}
	}
}

// diffIters compares the resynthesis iteration traces record by record. A
// diverged trace means the sweeps committed different resyntheses — a flip,
// even when every per-fault verdict that was recorded happens to agree.
func diffIters(d *differ, old, new *ledgerFile) {
	n := len(old.iters)
	if len(new.iters) != n {
		d.report("flips", &d.flips, "iteration count differs: %d -> %d", n, len(new.iters))
		if len(new.iters) < n {
			n = len(new.iters)
		}
	}
	for i := 0; i < n; i++ {
		oc, err1 := obs.CanonicalLedger([]obs.LedgerRecord{old.iters[i]})
		nc, err2 := obs.CanonicalLedger([]obs.LedgerRecord{new.iters[i]})
		if err1 != nil || err2 != nil || string(oc) != string(nc) {
			d.report("flips", &d.flips, "iteration %d differs: %s -> %s",
				i+1, trim(oc), trim(nc))
		}
	}
}

func trim(b []byte) string {
	for len(b) > 0 && b[len(b)-1] == '\n' {
		b = b[:len(b)-1]
	}
	return string(b)
}
