// Command layoutviz renders an ASCII view of a benchmark circuit's placed
// and routed layout: cell rows, routing congestion per layer, and the
// gates hosting undetectable faults (the clusters the resynthesis procedure
// targets) highlighted.
//
// Usage:
//
//	layoutviz -circuit tv80             # placement + congestion maps
//	layoutviz -circuit sparc_ifu -umap  # undetectable-fault heat map
package main

import (
	"flag"
	"fmt"
	"os"

	"dfmresyn/internal/bench"
	"dfmresyn/internal/fault"
	"dfmresyn/internal/flow"
	"dfmresyn/internal/geom"
)

func main() {
	var (
		circuit = flag.String("circuit", "", "benchmark circuit name")
		umap    = flag.Bool("umap", false, "overlay gates hosting undetectable faults (runs ATPG)")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *circuit == "" {
		fmt.Fprintln(os.Stderr, "pass -circuit <name>")
		os.Exit(2)
	}

	env := flow.NewEnv()
	env.Seed = *seed
	env.ATPG.Seed = *seed
	c, err := bench.Build(*circuit, env.Lib)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var d *flow.Design
	if *umap {
		d, err = env.Analyze(c, geom.Rect{})
	} else {
		d, err = env.PhysicalOnly(c, geom.Rect{})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w, h := d.Die.W(), d.Die.H()
	fmt.Printf("%s: die %dx%d, %d gates, wirelength %d, vias %d\n\n",
		*circuit, w, h, len(c.Gates), d.Lay.TotalWireLength(), d.Lay.TotalVias())

	// Placement map: '.' empty, '#' cell, 'U' cell hosting undetectable
	// faults (with -umap).
	grid := make([][]byte, h)
	for y := range grid {
		grid[y] = make([]byte, w)
		for x := range grid[y] {
			grid[y][x] = '.'
		}
	}
	hosts := map[int]bool{}
	if *umap && d.Faults != nil {
		for _, f := range d.Faults.Faults {
			if f.Status == fault.Undetectable {
				for _, g := range f.CorrespondingGates() {
					hosts[g.ID] = true
				}
			}
		}
	}
	for _, g := range c.Gates {
		loc := d.P.Loc[g.ID]
		mark := byte('#')
		if hosts[g.ID] {
			mark = 'U'
		}
		for dx := 0; dx < d.P.W[g.ID]; dx++ {
			x, y := loc.X-d.Die.X0+dx, loc.Y-d.Die.Y0
			if y >= 0 && y < h && x >= 0 && x < w {
				grid[y][x] = mark
			}
		}
	}
	fmt.Println("placement ('#' cell, 'U' hosts undetectable faults):")
	printGrid(grid)

	// Congestion per routing layer: digits = tracks in the cell.
	for li, name := range []string{"M2 (horizontal)", "M3 (vertical)"} {
		cg := make([][]byte, h)
		for y := range cg {
			cg[y] = make([]byte, w)
			for x := range cg[y] {
				n := len(d.Lay.Occ[li][y][x])
				switch {
				case n == 0:
					cg[y][x] = '.'
				case n < 10:
					cg[y][x] = byte('0' + n)
				default:
					cg[y][x] = '+'
				}
			}
		}
		fmt.Printf("\n%s congestion (tracks per grid cell):\n", name)
		printGrid(cg)
	}
}

func printGrid(grid [][]byte) {
	// Top row last so Y grows upward like a die plot.
	for y := len(grid) - 1; y >= 0; y-- {
		fmt.Printf("%3d %s\n", y, string(grid[y]))
	}
}
